#include "attention/attention.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/kernels.hpp"
#include "core/obs.hpp"
#include "core/simd/simd.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace orbit2 {

namespace {

// Approximate FLOP accounting: 2*Nq*Nk*(d + d_v) for a forward pass (score
// GEMM + weighted sum), doubled for a backward pass. Exponentials and
// rescaling are ignored; the counter tracks GEMM-dominated work only.
std::int64_t attention_fwd_flops(std::int64_t nq, std::int64_t nk,
                                 std::int64_t d, std::int64_t dv) {
  return 2 * nq * nk * (d + dv);
}

void check_qkv(const Tensor& q, const Tensor& k, const Tensor& v) {
  ORBIT2_REQUIRE(q.rank() == 2 && k.rank() == 2 && v.rank() == 2,
                 "attention expects rank-2 Q,K,V");
  ORBIT2_REQUIRE(q.dim(1) == k.dim(1), "attention: Q/K head dim mismatch");
  ORBIT2_REQUIRE(k.dim(0) == v.dim(0), "attention: K/V length mismatch");
}

}  // namespace

Tensor attention_naive_forward(const Tensor& q, const Tensor& k,
                               const Tensor& v, float scale,
                               AttentionContext* ctx) {
  check_qkv(q, k, v);
  const std::int64_t naive_flops =
      attention_fwd_flops(q.dim(0), k.dim(0), q.dim(1), v.dim(1));
  ORBIT2_OBS_SPAN_ARG("attention_naive_forward", "attention", "flops",
                      naive_flops);
  ORBIT2_OBS_COUNT("attention.flops", naive_flops);
  Tensor scores = matmul_nt(q, k);          // [Nq, Nk]
  scores.scale_inplace(scale);
  const Tensor probs = softmax_rows(scores);  // [Nq, Nk]
  Tensor output = matmul(probs, v);           // [Nq, d_v]
  if (ctx) {
    ctx->q = q;
    ctx->k = k;
    ctx->v = v;
    ctx->output = output;
    ctx->probs = probs;
    ctx->scale = scale;
    ctx->used_flash = false;
  }
  return output;
}

void attention_naive_forward_into(const Tensor& q, const Tensor& k,
                                  const Tensor& v, float scale,
                                  Tensor& scores_ws, Tensor& out) {
  check_qkv(q, k, v);
  const std::int64_t nq = q.dim(0), nk = k.dim(0);
  const std::int64_t d = q.dim(1), dv = v.dim(1);
  ORBIT2_REQUIRE(scores_ws.shape() == Shape({nq, nk}),
                 "attention_naive_forward_into: scores workspace must be "
                     << nq << "x" << nk);
  ORBIT2_REQUIRE(out.shape() == Shape({nq, dv}),
                 "attention_naive_forward_into: out must be " << nq << "x"
                                                              << dv);
  const std::int64_t naive_flops = attention_fwd_flops(nq, nk, d, dv);
  ORBIT2_OBS_SPAN_ARG("attention_naive_forward", "attention", "flops",
                      naive_flops);
  ORBIT2_OBS_COUNT("attention.flops", naive_flops);
  // Same kernel sequence as attention_naive_forward, minus the allocations:
  // S = Q K^T (gemm NT), S *= scale, P = softmax(S) in place, O = P V.
  kernels::gemm(kernels::Trans::kN, kernels::Trans::kT, nq, nk, d,
                q.data().data(), k.data().data(), scores_ws.data().data());
  scores_ws.scale_inplace(scale);
  softmax_rows_into(scores_ws, scores_ws);
  kernels::gemm(kernels::Trans::kN, kernels::Trans::kN, nq, dv, nk,
                scores_ws.data().data(), v.data().data(), out.data().data());
}

AttentionGrads attention_naive_backward(const AttentionContext& ctx,
                                        const Tensor& grad_output) {
  ORBIT2_REQUIRE(!ctx.used_flash, "context came from flash forward");
  const std::int64_t bwd_flops =
      2 * attention_fwd_flops(ctx.q.dim(0), ctx.k.dim(0), ctx.q.dim(1),
                              ctx.v.dim(1));
  ORBIT2_OBS_SPAN_ARG("attention_naive_backward", "attention", "flops",
                      bwd_flops);
  ORBIT2_OBS_COUNT("attention.flops", bwd_flops);
  const Tensor& probs = ctx.probs;
  // dV = P^T dO
  Tensor dv = matmul_tn(probs, grad_output);
  // dP = dO V^T
  const Tensor dp = matmul_nt(grad_output, ctx.v);
  // dS = softmax' , then scaled.
  Tensor ds = softmax_rows_backward(probs, dp);
  ds.scale_inplace(ctx.scale);
  // dQ = dS K ; dK = dS^T Q
  Tensor dq = matmul(ds, ctx.k);
  Tensor dk = matmul_tn(ds, ctx.q);
  return {std::move(dq), std::move(dk), std::move(dv)};
}

// The blocked online-softmax (flash) kernels parallelize over the dimension
// whose outputs they own — query blocks in the forward and dq pass, key
// blocks in the dk/dv pass — while walking the other dimension serially in
// ascending block order inside each chunk. Every output row is therefore
// produced by exactly one chunk in a fixed accumulation order, making
// results bit-identical for any thread count.

namespace {

/// Shared body of the flash forward: writes the (pre-zeroed) output and the
/// per-row log-sum-exp through raw pointers. Both the eager entry point and
/// the allocation-free _into entry point run exactly this code, which is
/// what makes their results bitwise identical.
void flash_forward_body(const float* pq, const float* pk, const float* pv,
                        float* po, float* plse, std::int64_t nq,
                        std::int64_t nk, std::int64_t d, std::int64_t dv,
                        float scale, const FlashParams& params) {
  const std::int64_t q_blocks = (nq + params.block_q - 1) / params.block_q;
  // Score dots stay sequential double reductions (their accumulation order
  // is pinned); only element-parallel rescales and axpy updates route
  // through the simd tier.
  const simd::Ops& sops = simd::ops();
  kernels::parallel_for(q_blocks, 1, [&](std::int64_t qb0, std::int64_t qb1) {
    // Per-thread grow-only scratch: score tile and running row statistics
    // (max m_i, normalizer l_i) for this chunk's query rows only. Every
    // entry read is written earlier in the same block iteration, so reuse
    // across calls cannot leak values — and steady-state replay of a fixed
    // shape allocates nothing.
    thread_local std::vector<float> scores;
    thread_local std::vector<float> row_max;
    thread_local std::vector<float> row_sum;
    const auto tile =
        static_cast<std::size_t>(params.block_q * params.block_kv);
    if (scores.size() < tile) scores.resize(tile);
    if (row_max.size() < static_cast<std::size_t>(params.block_q)) {
      row_max.resize(static_cast<std::size_t>(params.block_q));
      row_sum.resize(static_cast<std::size_t>(params.block_q));
    }
    for (std::int64_t qb = qb0; qb < qb1; ++qb) {
      const std::int64_t q0 = qb * params.block_q;
      const std::int64_t q1 = std::min(nq, q0 + params.block_q);
      std::fill(row_max.begin(),
                row_max.begin() + static_cast<std::size_t>(params.block_q),
                -std::numeric_limits<float>::infinity());
      std::fill(row_sum.begin(),
                row_sum.begin() + static_cast<std::size_t>(params.block_q),
                0.0f);

      for (std::int64_t k0 = 0; k0 < nk; k0 += params.block_kv) {
        const std::int64_t k1 = std::min(nk, k0 + params.block_kv);
        const std::int64_t bk = k1 - k0;

        // Score tile S = Qb Kb^T * scale (fits in cache by construction).
        for (std::int64_t i = q0; i < q1; ++i) {
          const float* qrow = pq + i * d;
          float* srow = scores.data() + (i - q0) * params.block_kv;
          for (std::int64_t j = 0; j < bk; ++j) {
            const float* krow = pk + (k0 + j) * d;
            double acc = 0.0;
            for (std::int64_t t = 0; t < d; ++t) {
              acc += static_cast<double>(qrow[t]) * krow[t];
            }
            srow[j] = static_cast<float>(acc) * scale;
          }
        }

        // Online softmax update per row: rescale previous accumulators when
        // a new maximum appears, then fold in this block's contributions.
        for (std::int64_t i = q0; i < q1; ++i) {
          float* srow = scores.data() + (i - q0) * params.block_kv;
          float block_max = srow[0];
          for (std::int64_t j = 1; j < bk; ++j) {
            block_max = std::max(block_max, srow[j]);
          }

          const float old_max = row_max[static_cast<std::size_t>(i - q0)];
          const float new_max = std::max(old_max, block_max);
          const float correction =
              (old_max == -std::numeric_limits<float>::infinity())
                  ? 0.0f
                  : std::exp(old_max - new_max);

          float* orow = po + i * dv;
          sops.scale_f32(orow, correction, dv);
          row_sum[static_cast<std::size_t>(i - q0)] *= correction;

          for (std::int64_t j = 0; j < bk; ++j) {
            const float p = std::exp(srow[j] - new_max);
            row_sum[static_cast<std::size_t>(i - q0)] += p;
            sops.axpy_f32(orow, pv + (k0 + j) * dv, p, dv);
          }
          row_max[static_cast<std::size_t>(i - q0)] = new_max;
        }
      }

      // Final normalization and log-sum-exp bookkeeping for this block.
      for (std::int64_t i = q0; i < q1; ++i) {
        const float l = row_sum[static_cast<std::size_t>(i - q0)];
        ORBIT2_CHECK(l > 0.0f, "flash attention: zero normalizer at row " << i);
        const float inv = 1.0f / l;
        sops.scale_f32(po + i * dv, inv, dv);
        plse[i] = row_max[static_cast<std::size_t>(i - q0)] + std::log(l);
      }
    }
  });
}

}  // namespace

Tensor attention_flash_forward(const Tensor& q, const Tensor& k,
                               const Tensor& v, float scale,
                               AttentionContext* ctx,
                               const FlashParams& params) {
  check_qkv(q, k, v);
  ORBIT2_REQUIRE(params.block_q >= 1 && params.block_kv >= 1,
                 "flash block sizes must be positive");
  const std::int64_t nq = q.dim(0), nk = k.dim(0);
  const std::int64_t d = q.dim(1), dv = v.dim(1);
  const std::int64_t flash_flops = attention_fwd_flops(nq, nk, d, dv);
  ORBIT2_OBS_SPAN_ARG("attention_flash_forward", "attention", "flops",
                      flash_flops);
  ORBIT2_OBS_COUNT("attention.flops", flash_flops);

  Tensor output = Tensor::zeros(Shape{nq, dv});
  Tensor logsumexp(Shape{nq});
  flash_forward_body(q.data().data(), k.data().data(), v.data().data(),
                     output.data().data(), logsumexp.data().data(), nq, nk, d,
                     dv, scale, params);

  if (ctx) {
    ctx->q = q;
    ctx->k = k;
    ctx->v = v;
    ctx->output = output;
    ctx->logsumexp = logsumexp;
    ctx->scale = scale;
    ctx->used_flash = true;
  }
  return output;
}

void attention_flash_forward_into(const Tensor& q, const Tensor& k,
                                  const Tensor& v, float scale, Tensor& out,
                                  Tensor& logsumexp_ws,
                                  const FlashParams& params) {
  check_qkv(q, k, v);
  ORBIT2_REQUIRE(params.block_q >= 1 && params.block_kv >= 1,
                 "flash block sizes must be positive");
  const std::int64_t nq = q.dim(0), nk = k.dim(0);
  const std::int64_t d = q.dim(1), dv = v.dim(1);
  ORBIT2_REQUIRE(out.shape() == Shape({nq, dv}),
                 "attention_flash_forward_into: out must be " << nq << "x"
                                                              << dv);
  ORBIT2_REQUIRE(logsumexp_ws.shape() == Shape({nq}),
                 "attention_flash_forward_into: logsumexp workspace must be ["
                     << nq << "]");
  const std::int64_t flash_flops = attention_fwd_flops(nq, nk, d, dv);
  ORBIT2_OBS_SPAN_ARG("attention_flash_forward", "attention", "flops",
                      flash_flops);
  ORBIT2_OBS_COUNT("attention.flops", flash_flops);

  out.fill(0.0f);  // the body accumulates into the output
  flash_forward_body(q.data().data(), k.data().data(), v.data().data(),
                     out.data().data(), logsumexp_ws.data().data(), nq, nk, d,
                     dv, scale, params);
}

AttentionGrads attention_flash_backward(const AttentionContext& ctx,
                                        const Tensor& grad_output,
                                        const FlashParams& params) {
  ORBIT2_REQUIRE(ctx.used_flash, "context came from naive forward");
  const Tensor& q = ctx.q;
  const Tensor& k = ctx.k;
  const Tensor& v = ctx.v;
  const std::int64_t nq = q.dim(0), nk = k.dim(0);
  const std::int64_t d = q.dim(1), dv = v.dim(1);
  check_same_shape(grad_output, ctx.output, "attention_flash_backward");
  const std::int64_t fbwd_flops = 2 * attention_fwd_flops(nq, nk, d, dv);
  ORBIT2_OBS_SPAN_ARG("attention_flash_backward", "attention", "flops",
                      fbwd_flops);
  ORBIT2_OBS_COUNT("attention.flops", fbwd_flops);

  Tensor dq = Tensor::zeros(q.shape());
  Tensor dk = Tensor::zeros(k.shape());
  Tensor dvt = Tensor::zeros(v.shape());

  const float* pq = q.data().data();
  const float* pk = k.data().data();
  const float* pv = v.data().data();
  const float* po = ctx.output.data().data();
  const float* pgo = grad_output.data().data();
  const float* plse = ctx.logsumexp.data().data();
  float* pdq = dq.data().data();
  float* pdk = dk.data().data();
  float* pdv = dvt.data().data();

  // D_i = rowsum(dO_i * O_i): the softmax-backward dot term, computed once.
  std::vector<float> delta(static_cast<std::size_t>(nq));
  kernels::parallel_for(
      nq, kernels::grain_for(dv), [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          double acc = 0.0;
          for (std::int64_t t = 0; t < dv; ++t) {
            acc += static_cast<double>(pgo[i * dv + t]) * po[i * dv + t];
          }
          delta[static_cast<std::size_t>(i)] = static_cast<float>(acc);
        }
      });

  const std::int64_t q_blocks = (nq + params.block_q - 1) / params.block_q;
  const std::int64_t k_blocks = (nk + params.block_kv - 1) / params.block_kv;

  // Recomputes the probability tile for query rows [q0, q1) x keys
  // [k0, k0+bk) from Q, K and the saved logsumexp.
  auto recompute_probs = [&](std::int64_t q0, std::int64_t q1, std::int64_t k0,
                             std::int64_t bk, std::vector<float>& probs) {
    for (std::int64_t i = q0; i < q1; ++i) {
      const float* qrow = pq + i * d;
      float* prow = probs.data() + (i - q0) * params.block_kv;
      const float lse = plse[i];
      for (std::int64_t j = 0; j < bk; ++j) {
        const float* krow = pk + (k0 + j) * d;
        double acc = 0.0;
        for (std::int64_t t = 0; t < d; ++t) {
          acc += static_cast<double>(qrow[t]) * krow[t];
        }
        prow[j] = std::exp(static_cast<float>(acc) * ctx.scale - lse);
      }
    }
  };

  const simd::Ops& sops = simd::ops();

  // Pass 1 — dQ: query blocks own disjoint dq rows; key blocks are walked
  // serially in ascending order inside each chunk.
  kernels::parallel_for(q_blocks, 1, [&](std::int64_t qb0, std::int64_t qb1) {
    std::vector<float> probs(
        static_cast<std::size_t>(params.block_q * params.block_kv));
    for (std::int64_t qb = qb0; qb < qb1; ++qb) {
      const std::int64_t q0 = qb * params.block_q;
      const std::int64_t q1 = std::min(nq, q0 + params.block_q);
      for (std::int64_t k0 = 0; k0 < nk; k0 += params.block_kv) {
        const std::int64_t bk = std::min(nk, k0 + params.block_kv) - k0;
        recompute_probs(q0, q1, k0, bk, probs);
        for (std::int64_t i = q0; i < q1; ++i) {
          const float* prow = probs.data() + (i - q0) * params.block_kv;
          const float* gorow = pgo + i * dv;
          float* dqrow = pdq + i * d;
          for (std::int64_t j = 0; j < bk; ++j) {
            const float p = prow[j];
            const float* vrow = pv + (k0 + j) * dv;
            double dp = 0.0;
            for (std::int64_t t = 0; t < dv; ++t) {
              dp += static_cast<double>(gorow[t]) * vrow[t];
            }
            // dS_ij = p * (dP_ij - D_i), scaled.
            const float ds = p *
                             (static_cast<float>(dp) -
                              delta[static_cast<std::size_t>(i)]) *
                             ctx.scale;
            sops.axpy_f32(dqrow, pk + (k0 + j) * d, ds, d);
          }
        }
      }
    }
  });

  // Pass 2 — dK, dV: key blocks own disjoint dk/dv rows; query blocks are
  // walked serially in ascending order inside each chunk.
  kernels::parallel_for(k_blocks, 1, [&](std::int64_t kb0, std::int64_t kb1) {
    std::vector<float> probs(
        static_cast<std::size_t>(params.block_q * params.block_kv));
    for (std::int64_t kb = kb0; kb < kb1; ++kb) {
      const std::int64_t k0 = kb * params.block_kv;
      const std::int64_t bk = std::min(nk, k0 + params.block_kv) - k0;
      for (std::int64_t q0 = 0; q0 < nq; q0 += params.block_q) {
        const std::int64_t q1 = std::min(nq, q0 + params.block_q);
        recompute_probs(q0, q1, k0, bk, probs);
        for (std::int64_t i = q0; i < q1; ++i) {
          const float* prow = probs.data() + (i - q0) * params.block_kv;
          const float* gorow = pgo + i * dv;
          const float* qrow = pq + i * d;
          for (std::int64_t j = 0; j < bk; ++j) {
            const float p = prow[j];
            const float* vrow = pv + (k0 + j) * dv;
            // The dp reduction keeps its sequential ascending-t order; the
            // independent dV_j += p * dO_i update (formerly interleaved in
            // the same loop) routes through the simd tier — separating the
            // two changes no operation's operands or order.
            double dp = 0.0;
            for (std::int64_t t = 0; t < dv; ++t) {
              dp += static_cast<double>(gorow[t]) * vrow[t];
            }
            sops.axpy_f32(pdv + (k0 + j) * dv, gorow, p, dv);
            const float ds = p *
                             (static_cast<float>(dp) -
                              delta[static_cast<std::size_t>(i)]) *
                             ctx.scale;
            sops.axpy_f32(pdk + (k0 + j) * d, qrow, ds, d);
          }
        }
      }
    }
  });

  return {std::move(dq), std::move(dk), std::move(dvt)};
}

}  // namespace orbit2
