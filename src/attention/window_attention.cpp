#include "attention/window_attention.hpp"

#include "attention/attention.hpp"
#include "core/kernels.hpp"
#include "core/obs.hpp"

namespace orbit2 {

Tensor cyclic_shift_tokens(const Tensor& tokens, std::int64_t grid_h,
                           std::int64_t grid_w, std::int64_t dy,
                           std::int64_t dx) {
  ORBIT2_REQUIRE(tokens.rank() == 2, "tokens must be [P, D]");
  ORBIT2_REQUIRE(tokens.dim(0) == grid_h * grid_w,
                 "token count vs grid mismatch");
  const std::int64_t d = tokens.dim(1);
  Tensor out(tokens.shape());
  const float* src = tokens.data().data();
  float* dst = out.data().data();
  // Normalize shifts into [0, dim).
  const std::int64_t sy = ((dy % grid_h) + grid_h) % grid_h;
  const std::int64_t sx = ((dx % grid_w) + grid_w) % grid_w;
  for (std::int64_t y = 0; y < grid_h; ++y) {
    const std::int64_t ny = (y + sy) % grid_h;
    for (std::int64_t x = 0; x < grid_w; ++x) {
      const std::int64_t nx = (x + sx) % grid_w;
      std::copy(src + (y * grid_w + x) * d, src + (y * grid_w + x + 1) * d,
                dst + (ny * grid_w + nx) * d);
    }
  }
  return out;
}

std::vector<std::int64_t> cyclic_shift_permutation(std::int64_t grid_h,
                                                   std::int64_t grid_w,
                                                   std::int64_t dy,
                                                   std::int64_t dx) {
  const std::int64_t sy = ((dy % grid_h) + grid_h) % grid_h;
  const std::int64_t sx = ((dx % grid_w) + grid_w) % grid_w;
  std::vector<std::int64_t> perm(
      static_cast<std::size_t>(grid_h * grid_w));
  // out[(y+sy, x+sx)] = in[(y, x)]  <=>  out[i] = in[perm[i]].
  for (std::int64_t y = 0; y < grid_h; ++y) {
    for (std::int64_t x = 0; x < grid_w; ++x) {
      const std::int64_t src_y = ((y - sy) % grid_h + grid_h) % grid_h;
      const std::int64_t src_x = ((x - sx) % grid_w + grid_w) % grid_w;
      perm[static_cast<std::size_t>(y * grid_w + x)] = src_y * grid_w + src_x;
    }
  }
  return perm;
}

std::vector<std::int64_t> window_partition_permutation(
    const WindowAttentionSpec& spec) {
  const std::int64_t gh = spec.grid_h, gw = spec.grid_w, w = spec.window;
  ORBIT2_REQUIRE(gh % w == 0 && gw % w == 0, "grid not divisible by window");
  std::vector<std::int64_t> perm;
  perm.reserve(static_cast<std::size_t>(gh * gw));
  for (std::int64_t wy = 0; wy < gh / w; ++wy) {
    for (std::int64_t wx = 0; wx < gw / w; ++wx) {
      for (std::int64_t iy = 0; iy < w; ++iy) {
        for (std::int64_t ix = 0; ix < w; ++ix) {
          perm.push_back((wy * w + iy) * gw + (wx * w + ix));
        }
      }
    }
  }
  return perm;
}

std::vector<std::int64_t> invert_permutation(
    const std::vector<std::int64_t>& perm) {
  std::vector<std::int64_t> inverse(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inverse[static_cast<std::size_t>(perm[i])] = static_cast<std::int64_t>(i);
  }
  return inverse;
}

Tensor window_attention_forward(const Tensor& q, const Tensor& k,
                                const Tensor& v, float scale,
                                const WindowAttentionSpec& spec) {
  ORBIT2_REQUIRE(q.rank() == 2 && k.rank() == 2 && v.rank() == 2,
                 "window attention expects rank-2 Q,K,V");
  ORBIT2_REQUIRE(q.shape() == k.shape(), "Q/K shape mismatch");
  ORBIT2_REQUIRE(k.dim(0) == v.dim(0), "K/V length mismatch");
  const std::int64_t gh = spec.grid_h, gw = spec.grid_w, w = spec.window;
  ORBIT2_REQUIRE(gh >= 1 && gw >= 1 && w >= 1, "bad window geometry");
  ORBIT2_REQUIRE(q.dim(0) == gh * gw, "token count vs grid mismatch");
  ORBIT2_REQUIRE(gh % w == 0 && gw % w == 0,
                 "grid " << gh << "x" << gw << " not divisible by window "
                         << w);
  ORBIT2_REQUIRE(spec.shift >= 0 && spec.shift < w,
                 "shift must be in [0, window)");
  ORBIT2_OBS_SPAN_ARG("window_attention_forward", "attention", "tokens",
                      gh * gw);

  // Swin: shift tokens, window-attend, shift back.
  const Tensor qs = spec.shift ? cyclic_shift_tokens(q, gh, gw, -spec.shift, -spec.shift) : q;
  const Tensor ks = spec.shift ? cyclic_shift_tokens(k, gh, gw, -spec.shift, -spec.shift) : k;
  const Tensor vs = spec.shift ? cyclic_shift_tokens(v, gh, gw, -spec.shift, -spec.shift) : v;

  const std::int64_t d = q.dim(1);
  const std::int64_t dv = v.dim(1);
  Tensor out(Shape{gh * gw, dv});

  // Windows are independent and write disjoint rows of `out`, so they
  // parallelize through the kernel layer; per-window math is unchanged, so
  // results are bit-identical for any thread count. Kernels invoked inside a
  // window (matmul, softmax) detect the enclosing parallel region and run
  // inline-serial.
  const std::int64_t wy_count = gh / w, wx_count = gw / w;
  const std::int64_t tokens_per_window = w * w;
  kernels::parallel_for(
      wy_count * wx_count, 1, [&](std::int64_t win0, std::int64_t win1) {
        for (std::int64_t win = win0; win < win1; ++win) {
          const std::int64_t wy = win / wx_count;
          const std::int64_t wx = win % wx_count;
          // Gather the window's tokens into contiguous buffers.
          Tensor qw(Shape{tokens_per_window, d});
          Tensor kw(Shape{tokens_per_window, d});
          Tensor vw(Shape{tokens_per_window, dv});
          for (std::int64_t iy = 0; iy < w; ++iy) {
            for (std::int64_t ix = 0; ix < w; ++ix) {
              const std::int64_t grid_index =
                  (wy * w + iy) * gw + (wx * w + ix);
              const std::int64_t local = iy * w + ix;
              std::copy(qs.data().begin() + grid_index * d,
                        qs.data().begin() + (grid_index + 1) * d,
                        qw.data().begin() + local * d);
              std::copy(ks.data().begin() + grid_index * d,
                        ks.data().begin() + (grid_index + 1) * d,
                        kw.data().begin() + local * d);
              std::copy(vs.data().begin() + grid_index * dv,
                        vs.data().begin() + (grid_index + 1) * dv,
                        vw.data().begin() + local * dv);
            }
          }
          const Tensor ow = attention_naive_forward(qw, kw, vw, scale, nullptr);
          for (std::int64_t iy = 0; iy < w; ++iy) {
            for (std::int64_t ix = 0; ix < w; ++ix) {
              const std::int64_t grid_index =
                  (wy * w + iy) * gw + (wx * w + ix);
              const std::int64_t local = iy * w + ix;
              std::copy(ow.data().begin() + local * dv,
                        ow.data().begin() + (local + 1) * dv,
                        out.data().begin() + grid_index * dv);
            }
          }
        }
      });

  return spec.shift ? cyclic_shift_tokens(out, gh, gw, spec.shift, spec.shift)
                    : out;
}

}  // namespace orbit2
