#pragma once
// Single-head scaled dot-product attention kernels.
//
// Two implementations of the same math:
//   * naive:  materializes the full N x N score matrix (quadratic memory) —
//     the reference the paper's ViT baseline suffers under.
//   * flash:  FlashAttention-style cache-blocked kernel with online
//     (streaming) softmax — O(N) memory, never materializes scores
//     (paper §III-D "Flash Attention ... cache-blocking technique").
// Both have exact backward passes; tests assert elementwise parity.
//
// Multi-head attention lives in the autograd layer and calls these kernels
// per head. Q,K,V are [N, d]; output is [N, d].

#include "tensor/tensor.hpp"

namespace orbit2 {

/// Saved context from a forward pass, consumed by the backward pass.
struct AttentionContext {
  Tensor q, k, v;      // inputs as seen by forward
  Tensor output;       // O
  Tensor probs;        // naive only: softmax(S), [N, N]
  Tensor logsumexp;    // flash only: per-row log-sum-exp of scaled scores [N]
  float scale = 1.0f;
  bool used_flash = false;
};

/// Gradients produced by attention backward.
struct AttentionGrads {
  Tensor dq, dk, dv;
};

/// Naive attention: O = softmax(Q K^T * scale) V.
Tensor attention_naive_forward(const Tensor& q, const Tensor& k,
                               const Tensor& v, float scale,
                               AttentionContext* ctx);

/// Inference-only naive attention writing into preallocated buffers:
/// `scores_ws` is an [Nq, Nk] workspace and `out` is [Nq, d_v]. Issues the
/// exact same kernel calls as attention_naive_forward (gemm NT, in-place
/// scale, row softmax, gemm NN), so results are bitwise identical; performs
/// no heap allocations.
void attention_naive_forward_into(const Tensor& q, const Tensor& k,
                                  const Tensor& v, float scale,
                                  Tensor& scores_ws, Tensor& out);

AttentionGrads attention_naive_backward(const AttentionContext& ctx,
                                        const Tensor& grad_output);

/// Parameters of the blocked kernel. Block sizes are rows of Q / rows of KV
/// processed per cache tile; defaults suit L1-resident tiles at d <= 128.
struct FlashParams {
  std::int64_t block_q = 64;
  std::int64_t block_kv = 64;
};

/// Flash attention forward: identical math, O(N·d) memory.
Tensor attention_flash_forward(const Tensor& q, const Tensor& k,
                               const Tensor& v, float scale,
                               AttentionContext* ctx,
                               const FlashParams& params = {});

/// Inference-only flash attention into preallocated `out` [Nq, d_v] and
/// `logsumexp_ws` [Nq]. Runs the same blocked online-softmax body as
/// attention_flash_forward (bitwise-identical results); score tiles live in
/// grow-only thread-local scratch, so steady-state calls allocate nothing.
void attention_flash_forward_into(const Tensor& q, const Tensor& k,
                                  const Tensor& v, float scale, Tensor& out,
                                  Tensor& logsumexp_ws,
                                  const FlashParams& params = {});

/// Flash attention backward: recomputes score blocks from the saved
/// log-sum-exp instead of stored probabilities.
AttentionGrads attention_flash_backward(const AttentionContext& ctx,
                                        const Tensor& grad_output,
                                        const FlashParams& params = {});

}  // namespace orbit2
