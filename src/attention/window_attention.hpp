#pragma once
// Swin-style (shifted-)window attention — the architectural prior art the
// paper contrasts with TILES (§II "Architecture solutions": Swin caps at
// 147K tokens because its hierarchy must deepen with resolution).
//
// Tokens live on a (grid_h x grid_w) spatial grid, row-major. Attention is
// computed independently inside non-overlapping window x window blocks; a
// cyclic shift of half the window (Swin's trick) lets alternating layers
// mix information across window boundaries. Unlike TILES — which assigns
// windows to devices and *keeps* them independent per sample — shifted
// windows re-couple everything, which is why Swin needs its hierarchy and
// cannot simply parallelize windows across GPUs for a single sample.

#include <vector>

#include "tensor/tensor.hpp"

namespace orbit2 {

struct WindowAttentionSpec {
  std::int64_t grid_h = 0;
  std::int64_t grid_w = 0;
  std::int64_t window = 8;  // window side length, must divide grid dims
  std::int64_t shift = 0;   // cyclic shift (0 or window/2 in Swin)
};

/// softmax(q k^T * scale) v computed within each (shifted) window.
/// q, k, v are [P, d] with P = grid_h * grid_w; returns [P, dv].
Tensor window_attention_forward(const Tensor& q, const Tensor& k,
                                const Tensor& v, float scale,
                                const WindowAttentionSpec& spec);

/// Cyclically shifts a [P, D] token grid by (dy, dx); the inverse of a
/// shift by (-dy, -dx). Exposed for tests.
Tensor cyclic_shift_tokens(const Tensor& tokens, std::int64_t grid_h,
                           std::int64_t grid_w, std::int64_t dy,
                           std::int64_t dx);

/// Row permutation realizing the cyclic shift: out[i] = in[perm[i]].
std::vector<std::int64_t> cyclic_shift_permutation(std::int64_t grid_h,
                                                   std::int64_t grid_w,
                                                   std::int64_t dy,
                                                   std::int64_t dx);

/// Row permutation grouping tokens window-by-window (row-major windows,
/// row-major cells within a window): after applying it, window k occupies
/// rows [k*window^2, (k+1)*window^2).
std::vector<std::int64_t> window_partition_permutation(
    const WindowAttentionSpec& spec);

/// The inverse of window_partition_permutation.
std::vector<std::int64_t> invert_permutation(
    const std::vector<std::int64_t>& perm);

}  // namespace orbit2
