#include "hwsim/parallelism.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"

namespace orbit2::hwsim {

std::string ParallelismPlan::to_string() const {
  std::ostringstream os;
  os << "gpus=" << total_gpus << " tp=" << tensor_parallel << " fsdp=" << fsdp
     << " tiles=" << tiles << " seq=" << sequence_shard << " ddp=" << ddp;
  return os.str();
}

ParallelismPlan plan_parallelism(const model::ModelConfig& config,
                                 std::int64_t gpus, std::int64_t tiles,
                                 bool favor_sequence) {
  ORBIT2_REQUIRE(gpus >= 1, "need at least one GPU");
  ORBIT2_REQUIRE(tiles >= 1, "tiles must be >= 1");

  FrontierTopology topo;
  ParallelismPlan plan;
  plan.total_gpus = gpus;

  // Optimizer state (fp32 master + 2 moments) must fit in ~1/3 of HBM after
  // TP x FSDP sharding; TP stays within a node. Model sharding is allocated
  // *before* TILES groups: when GPUs are scarce, tiles of a sample are
  // processed sequentially by the same sharded instance rather than
  // starving the model of memory.
  const double optimizer_bytes =
      static_cast<double>(total_parameter_count(config)) * 12.0;
  const double budget = topo.usable_bytes() / 3.0;
  std::int64_t shard_needed = 1;
  while (optimizer_bytes / static_cast<double>(shard_needed) > budget) {
    shard_needed *= 2;
  }

  std::int64_t remaining = gpus;
  // FSDP across the two neighbouring nodes of a TILES group (Fig 5).
  plan.fsdp = (remaining >= 2 && shard_needed > 1) ? 2 : 1;
  remaining /= plan.fsdp;
  // TP picks up the rest of the required sharding, bounded by the node.
  plan.tensor_parallel =
      std::min<std::int64_t>({topo.gpus_per_node,
                              std::max<std::int64_t>(1, shard_needed / plan.fsdp),
                              std::max<std::int64_t>(1, remaining)});
  remaining /= plan.tensor_parallel;
  remaining = std::max<std::int64_t>(1, remaining);
  // TILES groups take what is left, up to the requested tile count.
  plan.tiles = std::min(tiles, remaining);
  remaining /= plan.tiles;
  remaining = std::max<std::int64_t>(1, remaining);

  if (favor_sequence) {
    plan.sequence_shard = remaining;
    plan.ddp = 1;
  } else {
    plan.sequence_shard = 1;
    plan.ddp = remaining;
  }
  return plan;
}

MemoryBreakdown memory_per_gpu(const WorkloadSpec& spec,
                               const WorkloadCosts& costs,
                               const ParallelismPlan& plan,
                               const FrontierTopology& topo) {
  (void)topo;
  MemoryBreakdown mem;
  const double param_shard =
      static_cast<double>(plan.tensor_parallel * plan.fsdp);
  const double params = static_cast<double>(costs.parameters);

  mem.parameter_bytes = params * 2.0 / param_shard;
  mem.gradient_bytes = params * 2.0 / param_shard;
  mem.optimizer_bytes = params * 12.0 / param_shard;
  // Layer-wise FSDP gathers one full (TP-sharded) layer at a time.
  const double layer_params =
      static_cast<double>(spec.config.trunk_parameter_count()) /
      static_cast<double>(std::max<std::int64_t>(1, spec.config.layers));
  mem.transient_layer_bytes =
      layer_params * 2.0 / static_cast<double>(plan.tensor_parallel);

  // Tiles map to TILES groups: when the plan has fewer groups than the
  // workload has tiles, a group processes its tiles sequentially, so the
  // resident footprint is one tile's worth either way. Sequence sharding
  // splits a tile's tokens across GPUs.
  const double seq = static_cast<double>(plan.sequence_shard);
  mem.activation_bytes = costs.trunk_activation_bytes_per_tile / seq;
  mem.attention_score_bytes = costs.attention_score_bytes_per_tile / seq;
  // Roughly half the HR-sized buffers shard with the sequence (token-space
  // decoder tensors); the rest (stitched fields, halo copies) do not.
  mem.io_bytes = costs.io_bytes_per_tile * (0.5 + 0.5 / seq);
  return mem;
}

FitResult check_fits(const WorkloadSpec& spec, const ParallelismPlan& plan,
                     const FrontierTopology& topo) {
  FitResult result;
  const WorkloadCosts costs = analyze_workload(spec);
  result.breakdown = memory_per_gpu(spec, costs, plan, topo);
  result.budget_bytes = topo.usable_bytes();
  result.fits = result.breakdown.total() <= result.budget_bytes;
  return result;
}

}  // namespace orbit2::hwsim
