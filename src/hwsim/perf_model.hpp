#pragma once
// Performance estimation: per-sample step time under a parallelism plan,
// strong-scaling sweeps (Fig 6b), TILES speedup curves (Fig 6a), and
// max-sequence-length searches (Table III).
//
// Step time = compute (roofline with width-dependent achieved efficiency)
//           + per-layer launch overheads + fixed step overhead
//           + communication (TP all-reduces per layer, FSDP gathers per
//             layer, one gradient all-reduce per batch over TILES x DDP,
//             halo exchanges per tile).
// All absolute times are simulator estimates; the benches report them next
// to the paper's numbers and EXPERIMENTS.md discusses the match.

#include <vector>

#include "hwsim/parallelism.hpp"

namespace orbit2::hwsim {

struct StepTimeBreakdown {
  double compute_seconds = 0.0;
  double overhead_seconds = 0.0;
  double communication_seconds = 0.0;
  double total_seconds = 0.0;          // wall time for one model instance
  double per_sample_seconds = 0.0;     // wall time amortized over DDP
  double sustained_flops = 0.0;        // system-wide training FLOP rate
};

/// Estimates one training step (one sample per model instance).
StepTimeBreakdown estimate_step(const WorkloadSpec& spec,
                                const ParallelismPlan& plan,
                                const FrontierTopology& topo);

struct ScalingPoint {
  std::int64_t gpus = 0;
  ParallelismPlan plan;
  double per_sample_seconds = 0.0;
  double efficiency = 1.0;  // vs the first sweep point, ideal-linear
  double sustained_flops = 0.0;
};

/// Strong scaling sweep (paper Fig 6b): fixed workload, growing GPU count;
/// efficiency is speedup relative to the first point divided by the GPU
/// ratio.
std::vector<ScalingPoint> strong_scaling_sweep(
    const WorkloadSpec& spec, const std::vector<std::int64_t>& gpu_counts,
    const FrontierTopology& topo);

struct TilesSpeedupPoint {
  std::int64_t gpus = 0;
  double speedup = 1.0;  // vs 8-GPU non-tiled baseline
};

/// TILES speedup curve (paper Fig 6a): tiled configuration at growing GPU
/// counts vs the 8-GPU non-tiled baseline of the same model/task.
std::vector<TilesSpeedupPoint> tiles_speedup_sweep(
    const WorkloadSpec& tiled_spec, const std::vector<std::int64_t>& gpu_counts,
    const FrontierTopology& topo);

struct MaxSequenceResult {
  bool feasible = false;        // false = OOM even at the smallest grid
  std::int64_t sequence_length = 0;
  std::int64_t out_h = 0;
  std::int64_t out_w = 0;
  double resolution_km = 0.0;
  MemoryBreakdown at_limit;
};

/// Largest global output grid (2:1 aspect, multiples of patch*upscale*tiles)
/// whose training step fits in memory on `gpus` GPUs (Table III). Output
/// channels are taken from the config (18 in the paper's Table III runs).
MaxSequenceResult max_sequence_length(const model::ModelConfig& config,
                                      float compression, std::int64_t tiles,
                                      std::int64_t gpus,
                                      const FrontierTopology& topo);

}  // namespace orbit2::hwsim
