#include "hwsim/workload.hpp"

#include "core/error.hpp"
#include "model/pos_embed.hpp"

namespace orbit2::hwsim {

namespace {

// Bytes per element for activations stored in BF16 mixed precision.
constexpr double kActBytes = 2.0;
// Distinct activation tensors retained per trunk token per layer for the
// backward pass (x, q, k, v, attn-out, two layernorm saves, MLP hidden =
// mlp_ratio*D, MLP out), expressed in units of D: 7 + mlp_ratio.
double activation_width_units(const model::ModelConfig& c) {
  return 7.0 + static_cast<double>(c.mlp_ratio);
}
// fp32 copies of HR-sized fields the training step keeps live per output
// pixel (prediction, target, gradient, decoder pre-image, conv intermediates
// and their grads). Calibrated so the 9.5M / 8-GPU Table III row lands near
// the paper's.
constexpr double kOutputCopies = 12.0;

}  // namespace

std::int64_t total_parameter_count(const model::ModelConfig& c) {
  const std::int64_t d = c.embed_dim;
  const std::int64_t p2 = c.patch * c.patch;
  std::int64_t total = c.trunk_parameter_count();
  // Final norm.
  total += 2 * d;
  switch (c.architecture) {
    case model::Architecture::kReslim: {
      // Patch embed (per-variable tokens are p^2 wide) + variable embedding
      // + aggregation (query + Wk + Wv) + resolution table.
      total += p2 * d + d;
      total += c.in_channels * d;
      total += d + 2 * d * d;
      total += model::kResolutionTableSize * d;
      // Decoder to (p*up)^2 * Cout + refinement conv.
      const std::int64_t dec_out = p2 * c.upscale * c.upscale * c.out_channels;
      total += d * dec_out + dec_out;
      total += c.out_channels * c.out_channels * 9 + c.out_channels;
      // Residual path convs.
      total += c.in_channels * c.residual_hidden * 9 + c.residual_hidden;
      total += c.residual_hidden * c.out_channels * 9 + c.out_channels;
      total += c.out_channels * c.out_channels * 9 + c.out_channels;
      break;
    }
    case model::Architecture::kViTBaseline: {
      constexpr std::int64_t kAgg = 8;  // ViTBaselineModel::kAggregatedChannels
      total += c.in_channels * kAgg * 9 + kAgg;     // channel conv
      total += kAgg * p2 * d + d;                   // patch embed
      total += d * p2 * c.out_channels + p2 * c.out_channels;  // decoder
      break;
    }
  }
  return total;
}

WorkloadCosts analyze_workload(const WorkloadSpec& spec) {
  const model::ModelConfig& c = spec.config;
  ORBIT2_REQUIRE(spec.tiles >= 1, "tiles must be >= 1");
  ORBIT2_REQUIRE(spec.compression >= 1.0f, "compression must be >= 1");

  WorkloadCosts costs;
  costs.parameters = total_parameter_count(c);
  costs.sequence_length =
      spec.hr_h() * spec.hr_w() * c.out_channels / (c.patch * c.patch);

  const double d = static_cast<double>(c.embed_dim);
  const double layers = static_cast<double>(c.layers);
  // Grid/channel counts as doubles once, so the mixed arithmetic below stays
  // -Wconversion-clean.
  const double lr_h = static_cast<double>(spec.lr_h);
  const double lr_w = static_cast<double>(spec.lr_w);
  const double hr_pixels =
      static_cast<double>(spec.hr_h()) * static_cast<double>(spec.hr_w());
  const double p2 = static_cast<double>(c.patch * c.patch);
  const double in_ch = static_cast<double>(c.in_channels);
  const double out_ch = static_cast<double>(c.out_channels);
  const double tiles = static_cast<double>(spec.tiles);

  // Tokens entering the trunk.
  double trunk_tokens = 0.0;
  switch (c.architecture) {
    case model::Architecture::kReslim:
      // LR grid, channel-aggregated to one stream, then compressed.
      trunk_tokens = lr_h * lr_w / p2 / spec.compression;
      break;
    case model::Architecture::kViTBaseline:
      // HR grid, per-output-channel streams (Fig 1 accounting).
      trunk_tokens = static_cast<double>(costs.sequence_length);
      break;
  }
  // Halo padding inflates per-tile work (~10% per side for the paper's
  // fixed-width halos); this is the overhead that makes >16 tiles per
  // sample counterproductive in Table II(b).
  const double halo_inflation = spec.tiles > 1 ? 1.21 : 1.0;
  const double tokens_per_tile = trunk_tokens / tiles * halo_inflation;
  costs.trunk_tokens_per_tile = static_cast<std::int64_t>(tokens_per_tile);

  // ---- FLOPs (whole sample, all tiles) -----------------------------------
  // Trunk GEMMs: per token per layer, 2 * (4 D^2 attn proj + 2*ratio D^2
  // MLP) multiply-adds = 2 flops each.
  const double gemm_flops_per_token =
      layers * 2.0 *
      (4.0 * d * d + 2.0 * static_cast<double>(c.mlp_ratio) * d * d);
  // Attention scores: window = tokens in the same tile.
  const double worked_tokens = tokens_per_tile * tiles;
  const double attn_flops =
      layers * 4.0 * worked_tokens * tokens_per_tile * d;
  double fwd = worked_tokens * gemm_flops_per_token + attn_flops;

  if (c.architecture == model::Architecture::kReslim) {
    // Channel aggregation runs on V*P uncompressed LR tokens.
    const double agg_tokens = in_ch * lr_h * lr_w / p2;
    fwd += agg_tokens * 2.0 * (2.0 * d * d);  // Wk, Wv projections
    // Decoder projection per uncompressed token.
    const double dec_out = p2 * static_cast<double>(c.upscale) *
                           static_cast<double>(c.upscale) * out_ch;
    fwd += lr_h * lr_w / p2 * 2.0 * d * dec_out;
    // Residual + refinement convs: linear in pixels, 3x3 kernels.
    const double lr_pixels = lr_h * lr_w;
    const double hidden = static_cast<double>(c.residual_hidden);
    fwd += 2.0 * 9.0 *
           (lr_pixels * in_ch * hidden + lr_pixels * hidden * out_ch +
            2.0 * hr_pixels * out_ch * out_ch);
  } else {
    fwd += 2.0 * 9.0 * hr_pixels * in_ch * 8.0;              // channel conv
    fwd += trunk_tokens * 2.0 * d * (p2 * out_ch);           // decoder
  }

  costs.forward_flops = fwd;
  costs.train_flops = 3.0 * fwd;  // backward ~ 2x forward

  // ---- Memory ---------------------------------------------------------
  costs.trunk_activation_bytes_per_tile =
      layers * tokens_per_tile * d * activation_width_units(c) * kActBytes;
  if (!c.use_flash_attention ||
      c.architecture == model::Architecture::kViTBaseline) {
    // Naive attention materializes scores + probs per head per layer.
    costs.attention_score_bytes_per_tile =
        layers * static_cast<double>(c.heads) * tokens_per_tile *
        tokens_per_tile * 2.0 * kActBytes;
  }
  const double hr_pixels_per_tile = hr_pixels / tiles;
  const double lr_pixels_per_tile = lr_h * lr_w / tiles;
  costs.io_bytes_per_tile =
      hr_pixels_per_tile * out_ch * 4.0 * kOutputCopies +
      lr_pixels_per_tile * in_ch * 4.0 * 2.0;
  return costs;
}

double global_resolution_km(std::int64_t hr_w) {
  constexpr double kEquatorKm = 40075.0;
  ORBIT2_REQUIRE(hr_w >= 1, "empty grid");
  return kEquatorKm / static_cast<double>(hr_w);
}

}  // namespace orbit2::hwsim
