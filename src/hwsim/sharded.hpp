#pragma once
// Real (executable) model-parallel semantics over virtual devices.
//
// hwsim's planner and cost models predict *when* sharding pays off; this
// header implements *what* sharding computes, on CPU, so the orthogonal
// parallelism stack (paper §III-C/D) is demonstrated with real data
// movement and verified numerically against unsharded execution:
//
//  * Column-sharded linear: W split along the output dimension; each
//    device computes its output slice; all-gather concatenates.
//  * Row-sharded linear: W split along the input dimension; each device
//    computes a partial sum; all-reduce combines (the Megatron pair).
//  * Hybrid-OP chains: alternating column->row sharding of consecutive
//    layers needs no communication between the pair's two matmuls — the
//    optimization ORBIT adopts and ORBIT-2 reuses. The chain here
//    communicates only once per pair, exactly like the paper's scheme.
//  * Layer-wise FSDP: each device owns a 1/N shard of every layer's
//    parameters; a layer is all-gathered just-in-time for its matmul and
//    the gathered copy is dropped immediately after (the paper's
//    "parameters are sharded one layer at a time").
//
// Collectives here are real memory movement between per-device buffers
// (single process; devices are indices), with byte counters so tests can
// assert the communication-volume claims (Hybrid-OP halves traffic vs
// naive column-only sharding).

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace orbit2::hwsim {

/// Contiguous dim-0 row range [begin, end) owned by one shard.
struct RowRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t rows() const { return end - begin; }
};

/// Canonical ownership map for splitting `rows` dim-0 rows across `shards`
/// workers: contiguous ranges, remainder rows going to the leading shards,
/// so any two shard counts' layouts are related by pure slicing (sizes
/// differ by at most one row). Every sharded structure in this repo — the
/// FSDP stack below and elastic checkpoint resharding — uses this map, so
/// concatenating the shards in order always reconstructs the full tensor.
RowRange shard_rows(std::int64_t rows, std::int64_t shard,
                    std::int64_t shards);

/// Tracks bytes moved by each collective, for communication accounting.
struct CommStats {
  std::int64_t allgather_bytes = 0;
  std::int64_t allreduce_bytes = 0;
  std::int64_t collective_calls = 0;

  std::int64_t total_bytes() const { return allgather_bytes + allreduce_bytes; }
  void reset() { *this = CommStats{}; }
};

/// A linear layer W [in, out] sharded across `devices` virtual devices.
class ShardedLinear {
 public:
  enum class Mode { kColumn, kRow };

  /// Splits `weight` ([in, out]) and `bias` ([out]) across devices.
  /// Column mode splits the out dimension; row mode splits the in
  /// dimension. The respective dimension must divide by `devices`.
  ShardedLinear(const Tensor& weight, const Tensor& bias, Mode mode,
                std::int64_t devices);

  /// Column mode: x is replicated on all devices -> output all-gathered.
  /// Row mode: x must already be sharded along features (one slice per
  /// device, as produced by a preceding column layer) -> output
  /// all-reduced. `stats` accumulates communication volume.
  Tensor forward(const std::vector<Tensor>& x_per_device,
                 CommStats& stats) const;

  /// Column mode only: returns each device's *local* output slice without
  /// the all-gather — the input layout a following row-mode layer wants.
  std::vector<Tensor> forward_local(const std::vector<Tensor>& x_per_device) const;

  Mode mode() const { return mode_; }
  std::int64_t devices() const { return static_cast<std::int64_t>(weights_.size()); }

 private:
  Mode mode_;
  std::vector<Tensor> weights_;  // per-device shard
  std::vector<Tensor> biases_;   // column: sharded; row: full on device 0
};

/// Hybrid-OP pair: column-sharded W1 followed by row-sharded W2 (an MLP or
/// attention-projection pair). Communicates once (one all-reduce) instead
/// of twice; forward(x) == x W1 W2 + broadcasted biases.
class HybridOpPair {
 public:
  HybridOpPair(const Tensor& w1, const Tensor& b1, const Tensor& w2,
               const Tensor& b2, std::int64_t devices);

  Tensor forward(const Tensor& x, CommStats& stats) const;

 private:
  ShardedLinear column_;
  ShardedLinear row_;
};

/// Reference chain: the same two layers, each column-sharded with a full
/// all-gather after every layer (the naive scheme Hybrid-OP improves on).
Tensor column_only_chain(const Tensor& x, const Tensor& w1, const Tensor& b1,
                         const Tensor& w2, const Tensor& b2,
                         std::int64_t devices, CommStats& stats);

/// Layer-wise FSDP over a stack of linear layers: each device permanently
/// owns the shard_rows(in_l, d, N) row range of every W. `forward` gathers
/// one layer at a time, applies it (with GELU between layers), and drops
/// the gather — so results are bit-identical for every device count.
class LayerwiseFsdpStack {
 public:
  /// weights[l] is [in_l, out_l]; any `devices` >= 1 is valid (remainder
  /// rows go to the leading devices per shard_rows).
  LayerwiseFsdpStack(std::vector<Tensor> weights, std::vector<Tensor> biases,
                     std::int64_t devices);

  Tensor forward(const Tensor& x, CommStats& stats) const;

  /// Peak bytes of gathered (transient) parameters held at any instant;
  /// the layer-wise wrapping claim is that this equals the largest single
  /// layer, not the whole model.
  std::int64_t peak_transient_bytes() const { return peak_transient_bytes_; }
  std::int64_t total_parameter_bytes() const;

 private:
  std::int64_t devices_;
  std::vector<std::vector<Tensor>> weight_shards_;  // [layer][device]
  std::vector<Tensor> biases_;
  mutable std::int64_t peak_transient_bytes_ = 0;
};

}  // namespace orbit2::hwsim
