#pragma once
// Frontier hardware model (paper §IV "System Details").
//
// Each node: one 64-core EPYC + 4 MI250X cards = 8 GCDs ("GPUs"), 64 GB
// HBM each; GPUs within a node talk over 50 GB/s Infinity Fabric; nodes
// over 100 GB/s Slingshot-11. We model per-GCD BF16 peak, HBM bandwidth,
// link bandwidths/latencies and per-kernel / per-step software overheads.
// Collective costs use standard ring/tree closed forms.
//
// Every constant is a struct field, not a literal in a formula, so the
// ablation benches can perturb them.

#include <cstdint>

namespace orbit2::hwsim {

struct FrontierTopology {
  std::int64_t gpus_per_node = 8;
  double mem_per_gpu_bytes = 64e9;
  /// MI250X GCD BF16 matrix peak.
  double peak_bf16_flops = 191.5e12;
  double hbm_bandwidth = 1.6e12;  // bytes/s per GCD

  double intra_node_bandwidth = 50e9;   // GPU-GPU Infinity Fabric, bytes/s
  double inter_node_bandwidth = 100e9;  // Slingshot-11 node injection, bytes/s
  double intra_node_latency = 2e-6;     // seconds per hop
  double inter_node_latency = 5e-6;

  /// Fraction of peak a well-shaped GEMM achieves at saturation.
  double max_compute_efficiency = 0.33;
  /// Embedding width at which half the saturating efficiency is reached;
  /// models small kernels underutilizing the GCD (paper: the 9.5M model
  /// "underutilizes hardware at large scales").
  double efficiency_half_width = 1200.0;
  /// Per-transformer-layer launch/sync overhead (seconds).
  double per_layer_overhead = 25e-6;
  /// Fixed per-optimizer-step overhead: host sync, IO, quad-tree builds.
  double per_step_overhead = 1.2e-3;
  /// Memory the runtime reserves per GCD (allocator, libs, comm buffers).
  double reserved_bytes = 4e9;

  double usable_bytes() const { return mem_per_gpu_bytes - reserved_bytes; }

  /// Achieved fraction of peak for GEMMs of a model with this embedding
  /// width: eff = max * D / (D + half_width).
  double achieved_efficiency(double embed_dim) const {
    return max_compute_efficiency * embed_dim /
           (embed_dim + efficiency_half_width);
  }
  double achieved_flops(double embed_dim) const {
    return peak_bf16_flops * achieved_efficiency(embed_dim);
  }
};

/// Link parameters for a communicator whose `participants` GPUs span
/// `nodes` nodes: bandwidth/latency of the slowest link involved.
struct LinkProfile {
  double bandwidth = 0.0;
  double latency = 0.0;
};
LinkProfile communicator_link(const FrontierTopology& topo,
                              std::int64_t participants);

/// Ring all-reduce of `bytes` across n participants:
/// 2 * (n-1)/n * bytes / bw + 2 * (n-1) * latency.
double allreduce_time(const FrontierTopology& topo, double bytes,
                      std::int64_t participants);

/// Ring all-gather (or reduce-scatter) of `bytes` total across n:
/// (n-1)/n * bytes / bw + (n-1) * latency.
double allgather_time(const FrontierTopology& topo, double bytes,
                      std::int64_t participants);

/// Tree broadcast of `bytes` to n participants.
double broadcast_time(const FrontierTopology& topo, double bytes,
                      std::int64_t participants);

/// Point-to-point transfer of `bytes` (halo exchange).
double p2p_time(const FrontierTopology& topo, double bytes,
                bool crosses_node);

}  // namespace orbit2::hwsim
