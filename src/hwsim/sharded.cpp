#include "hwsim/sharded.hpp"

#include "core/debug_check.hpp"
#include "core/kernels.hpp"
#include "core/obs.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace orbit2::hwsim {

namespace {

/// Row-broadcast bias add, parallel over rows through the kernel layer.
void add_bias_rows_inplace(Tensor& y, const Tensor& bias) {
  const std::int64_t rows = y.dim(0), cols = y.dim(1);
  float* py = y.data().data();
  const float* pb = bias.data().data();
  kernels::parallel_for(
      rows, kernels::grain_for(cols), [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          float* row = py + r * cols;
          for (std::int64_t c = 0; c < cols; ++c) row[c] += pb[c];
        }
      });
}

/// Splits a [in, out] weight along `axis` into `devices` equal shards.
std::vector<Tensor> split_weight(const Tensor& weight, int axis,
                                 std::int64_t devices) {
  ORBIT2_REQUIRE(weight.rank() == 2, "weight must be rank-2");
  ORBIT2_REQUIRE(weight.dim(axis) % devices == 0,
                 "dimension " << weight.dim(axis) << " not divisible by "
                              << devices << " devices");
  const std::int64_t shard = weight.dim(axis) / devices;
  std::vector<Tensor> shards;
  shards.reserve(static_cast<std::size_t>(devices));
  for (std::int64_t d = 0; d < devices; ++d) {
    shards.push_back(weight.slice(axis, d * shard, shard));
  }
  return shards;
}

}  // namespace

RowRange shard_rows(std::int64_t rows, std::int64_t shard,
                    std::int64_t shards) {
  ORBIT2_REQUIRE(shards >= 1, "need at least one shard");
  ORBIT2_REQUIRE(shard >= 0 && shard < shards,
                 "shard " << shard << " out of range [0, " << shards << ")");
  ORBIT2_REQUIRE(rows >= 0, "negative row count " << rows);
  const std::int64_t base = rows / shards;
  const std::int64_t rem = rows % shards;
  RowRange range;
  range.begin = shard * base + std::min(shard, rem);
  range.end = range.begin + base + (shard < rem ? 1 : 0);
  return range;
}

ShardedLinear::ShardedLinear(const Tensor& weight, const Tensor& bias,
                             Mode mode, std::int64_t devices)
    : mode_(mode) {
  ORBIT2_REQUIRE(devices >= 1, "need at least one device");
  ORBIT2_REQUIRE(bias.rank() == 1 && bias.dim(0) == weight.dim(1),
                 "bias must be [out]");
  if (mode == Mode::kColumn) {
    weights_ = split_weight(weight, 1, devices);
    ORBIT2_REQUIRE(bias.dim(0) % devices == 0, "bias not divisible");
    const std::int64_t shard = bias.dim(0) / devices;
    for (std::int64_t d = 0; d < devices; ++d) {
      biases_.push_back(bias.slice(0, d * shard, shard));
    }
  } else {
    weights_ = split_weight(weight, 0, devices);
    biases_.push_back(bias.clone());  // applied once after the all-reduce
  }
}

std::vector<Tensor> ShardedLinear::forward_local(
    const std::vector<Tensor>& x_per_device) const {
  ORBIT2_REQUIRE(mode_ == Mode::kColumn, "forward_local is column-mode only");
  ORBIT2_REQUIRE(x_per_device.size() == weights_.size(),
                 "one input per device required");
  std::vector<Tensor> outputs(weights_.size());
  // Each virtual device computes its shard as one kernel-layer task (grain
  // 1); slots are disjoint, which the WriteRegion scope asserts under
  // ORBIT2_DEBUG_CHECKS.
  kernels::parallel_for(
      static_cast<std::int64_t>(weights_.size()), 1,
      [&](std::int64_t d0, std::int64_t d1) {
        for (std::int64_t di = d0; di < d1; ++di) {
          const auto d = static_cast<std::size_t>(di);
          const debug::WriteRegion write_scope(
              outputs.data(), debug::WriteInterval{di, di + 1},
              "ShardedLinear::forward_local device slot");
          Tensor y = matmul(x_per_device[d], weights_[d]);
          add_bias_rows_inplace(y, biases_[d]);
          outputs[d] = std::move(y);
        }
      });
  return outputs;
}

Tensor ShardedLinear::forward(const std::vector<Tensor>& x_per_device,
                              CommStats& stats) const {
  ORBIT2_REQUIRE(x_per_device.size() == weights_.size(),
                 "one input per device required");
  if (mode_ == Mode::kColumn) {
    // Local slices, then all-gather along features.
    std::vector<Tensor> local = forward_local(x_per_device);
    Tensor gathered = Tensor::concat(1, local);
    std::int64_t gathered_bytes = 0;
    for (const Tensor& part : local) {
      gathered_bytes += part.numel() * static_cast<std::int64_t>(sizeof(float));
    }
    stats.allgather_bytes += gathered_bytes;
    ++stats.collective_calls;
    ORBIT2_OBS_COUNT("hwsim.allgather_bytes", gathered_bytes);
    ORBIT2_OBS_COUNT("hwsim.collective_calls", 1);
    return gathered;
  }
  // Row mode: partial products summed by all-reduce.
  Tensor sum;
  for (std::size_t d = 0; d < weights_.size(); ++d) {
    Tensor partial = matmul(x_per_device[d], weights_[d]);
    if (d == 0) {
      sum = std::move(partial);
    } else {
      sum.add_inplace(partial);
    }
  }
  // Wire cost of a ring all-reduce: 2 * (n-1)/n * |T| per participant.
  const auto n = static_cast<std::int64_t>(weights_.size());
  const std::int64_t wire_bytes = 2 * (n - 1) * sum.numel() *
                                  static_cast<std::int64_t>(sizeof(float)) / n;
  stats.allreduce_bytes += wire_bytes;
  ++stats.collective_calls;
  ORBIT2_OBS_COUNT("hwsim.allreduce_bytes", wire_bytes);
  ORBIT2_OBS_COUNT("hwsim.collective_calls", 1);
  // Bias once, post-reduction.
  add_bias_rows_inplace(sum, biases_.front());
  return sum;
}

HybridOpPair::HybridOpPair(const Tensor& w1, const Tensor& b1,
                           const Tensor& w2, const Tensor& b2,
                           std::int64_t devices)
    : column_(w1, b1, ShardedLinear::Mode::kColumn, devices),
      row_(w2, b2, ShardedLinear::Mode::kRow, devices) {
  ORBIT2_REQUIRE(w1.dim(1) == w2.dim(0),
                 "pair dimensions must chain: " << w1.shape().to_string()
                                                << " then "
                                                << w2.shape().to_string());
}

Tensor HybridOpPair::forward(const Tensor& x, CommStats& stats) const {
  // Replicate x (free: same process), compute column-local slices — these
  // are exactly the feature shards the row layer consumes, so NO collective
  // happens between the two matmuls. One all-reduce at the end.
  std::vector<Tensor> replicated(static_cast<std::size_t>(column_.devices()), x);
  std::vector<Tensor> hidden_shards = column_.forward_local(replicated);
  return row_.forward(hidden_shards, stats);
}

Tensor column_only_chain(const Tensor& x, const Tensor& w1, const Tensor& b1,
                         const Tensor& w2, const Tensor& b2,
                         std::int64_t devices, CommStats& stats) {
  ShardedLinear layer1(w1, b1, ShardedLinear::Mode::kColumn, devices);
  ShardedLinear layer2(w2, b2, ShardedLinear::Mode::kColumn, devices);
  std::vector<Tensor> replicated(static_cast<std::size_t>(devices), x);
  // Layer 1 gathers its full output so layer 2 (also column) can replicate
  // it — the extra collective Hybrid-OP eliminates.
  Tensor hidden = layer1.forward(replicated, stats);
  std::vector<Tensor> replicated2(static_cast<std::size_t>(devices), hidden);
  return layer2.forward(replicated2, stats);
}

LayerwiseFsdpStack::LayerwiseFsdpStack(std::vector<Tensor> weights,
                                       std::vector<Tensor> biases,
                                       std::int64_t devices)
    : devices_(devices), biases_(std::move(biases)) {
  ORBIT2_REQUIRE(weights.size() == biases_.size(),
                 "one bias per weight required");
  ORBIT2_REQUIRE(devices >= 1, "need at least one device");
  weight_shards_.reserve(weights.size());
  // Ownership follows the canonical shard_rows map (remainder rows to the
  // leading devices), so any device count is valid — including counts that
  // do not divide the row dimension — and a shrink/grow between counts is
  // pure re-slicing. forward() gathers the full weight before its matmul,
  // so the math is bit-identical for every layout.
  for (const Tensor& w : weights) {
    ORBIT2_REQUIRE(w.rank() == 2, "weight must be rank-2");
    std::vector<Tensor> shards;
    shards.reserve(static_cast<std::size_t>(devices));
    for (std::int64_t d = 0; d < devices; ++d) {
      const RowRange range = shard_rows(w.dim(0), d, devices);
      shards.push_back(w.slice(0, range.begin, range.rows()));
    }
    weight_shards_.push_back(std::move(shards));
  }
}

std::int64_t LayerwiseFsdpStack::total_parameter_bytes() const {
  std::int64_t total = 0;
  for (const auto& shards : weight_shards_) {
    for (const Tensor& s : shards) {
      total += s.numel() * static_cast<std::int64_t>(sizeof(float));
    }
  }
  return total;
}

Tensor LayerwiseFsdpStack::forward(const Tensor& x, CommStats& stats) const {
  Tensor h = x;
  peak_transient_bytes_ = 0;
  for (std::size_t layer = 0; layer < weight_shards_.size(); ++layer) {
    // Just-in-time all-gather of this layer's full weight.
    Tensor full = Tensor::concat(0, weight_shards_[layer]);
    const std::int64_t gathered_bytes =
        full.numel() * static_cast<std::int64_t>(sizeof(float));
    stats.allgather_bytes += gathered_bytes;
    ++stats.collective_calls;
    ORBIT2_OBS_COUNT("hwsim.allgather_bytes", gathered_bytes);
    ORBIT2_OBS_COUNT("hwsim.collective_calls", 1);
    peak_transient_bytes_ = std::max(peak_transient_bytes_, gathered_bytes);

    Tensor y = matmul(h, full);
    add_bias_rows_inplace(y, biases_[layer]);
    // GELU between layers (not after the last).
    h = (layer + 1 < weight_shards_.size()) ? gelu(y) : y;
    // `full` drops here: the transient gathered copy never outlives the
    // layer — the layer-wise wrapping guarantee.
  }
  return h;
}

}  // namespace orbit2::hwsim
