#pragma once
// Ring sequence-parallel attention — the prior-art scaling algorithm the
// paper compares TILES against (§II "Scaling algorithm solutions",
// refs [22][29][30]: sequence parallelism tops out at 188K tokens because
// "self-attention requires each token to interact with all other tokens
// from every other GPU", incurring heavy inter-GPU communication).
//
// This is a real executable implementation over virtual devices: the
// sequence is partitioned across devices by query rows; key/value blocks
// rotate around the ring so every device eventually sees every KV block,
// combining partial attention outputs with the same online-softmax
// rescaling flash attention uses. The result is numerically identical to
// monolithic attention — unlike TILES, which changes the math (restricts
// the window) in exchange for near-zero communication.
//
// CommStats counts the rotated KV bytes, so benches can demonstrate the
// paper's motivating comparison quantitatively: ring attention moves
// O(N · d) bytes per device per layer; TILES moves a halo strip once per
// sample.

#include <vector>

#include "hwsim/sharded.hpp"
#include "tensor/tensor.hpp"

namespace orbit2::hwsim {

/// Exact attention computed ring-parallel across `devices` virtual devices.
/// q, k, v are the full [N, d] operands; N must divide by `devices`.
/// Returns softmax(q k^T * scale) v, bitwise-close to the monolithic
/// result; `stats` accumulates the KV ring traffic.
Tensor ring_attention(const Tensor& q, const Tensor& k, const Tensor& v,
                      float scale, std::int64_t devices, CommStats& stats);

/// Communication volume (bytes) for one ring-attention pass at the given
/// geometry — the closed form behind the measured stats, used by the
/// comparison bench: each device receives (devices-1) KV block pairs.
std::int64_t ring_attention_comm_bytes(std::int64_t tokens, std::int64_t dim,
                                       std::int64_t devices);

/// TILES halo traffic (bytes) for the same sequence laid out on a square-ish
/// tile grid with the given halo width and channel count: one strip
/// exchange per sample.
std::int64_t tiles_halo_comm_bytes(std::int64_t grid_h, std::int64_t grid_w,
                                   std::int64_t tiles, std::int64_t halo,
                                   std::int64_t channels);

}  // namespace orbit2::hwsim
