#pragma once
// Fault injection and recovery modeling for exascale training runs.
//
// ORBIT-2-scale jobs (up to 32,768 Frontier GCDs for hours) treat node
// failure as the norm: with per-GCD exponential failures the job-level MTBF
// shrinks as 1/n, so a multi-hour run *will* be interrupted. This module
// layers a seeded, fully deterministic FaultModel onto the hardware model:
// per-GCD exponential failures, hash-derived straggler slowdowns (every
// synchronous collective waits for the slowest GCD), and degraded links.
// On top sits a recovery-cost model (detect -> restart -> reload -> replay
// lost work) and the resulting expected-goodput curve versus checkpoint
// interval, which exhibits the classic Young/Daly interior optimum
// tau* ~= sqrt(2 C / lambda). A discrete-event simulation of a full run
// cross-checks the analytic curve from the same seeded failure stream.

#include <cstdint>
#include <vector>

#include "core/rng.hpp"

namespace orbit2::hwsim {

struct FaultModelConfig {
  /// Per-GCD mean time between failures, seconds. Leadership-system fleets
  /// see node-level interrupts every few hours at full scale; the default
  /// puts a 32,768-GCD job's MTBF near one hour.
  double gcd_mtbf_seconds = 1.0e8;
  /// Fraction of GCDs running slow (thermal throttling, flaky HBM lanes).
  double straggler_fraction = 0.01;
  /// Step-time multiplier on a straggler GCD (>= 1).
  double straggler_slowdown = 1.25;
  /// Probability a given inter-node link is degraded, and the bandwidth
  /// fraction it retains while flapping.
  double link_degrade_fraction = 0.002;
  double link_degrade_factor = 0.25;
  std::uint64_t seed = 0xfa0175eedull;
};

/// Seeded failure/straggler/link model for a job spanning `gcds` GCDs.
/// Everything is deterministic: the failure stream is a plain xoshiro
/// stream, and per-GCD / per-link properties are pure hash functions of
/// (seed, id), so two models with the same config agree everywhere.
class FaultModel {
 public:
  explicit FaultModel(std::int64_t gcds, FaultModelConfig config = {});

  std::int64_t gcds() const { return gcds_; }
  const FaultModelConfig& config() const { return config_; }

  /// Job-level failure rate (per second): any of the n GCDs failing kills
  /// the synchronous step, so lambda = n / mtbf_gcd.
  double failure_rate() const;
  /// Job-level MTBF = 1 / failure_rate().
  double mean_time_between_failures() const;

  /// Draws the wall time to the next job-killing failure (exponential from
  /// the seeded stream).
  double sample_time_to_failure();

  /// Restarts the failure stream from `seed` (per-GCD/per-link properties
  /// are unaffected; they depend only on the config seed).
  void reseed(std::uint64_t seed);

  /// Rewinds the failure stream to its initial state (the config seed), so
  /// the exact same failure sequence replays — the handle elastic policy
  /// evaluation uses to compare strategies under one failure history.
  void restart() { reseed(config_.seed); }

  /// Deterministic per-GCD slowdown factor: 1 for healthy GCDs,
  /// `straggler_slowdown` for the hash-selected straggler set.
  double straggler_factor(std::int64_t gcd) const;
  /// Synchronous-step slowdown for the whole job: every collective waits
  /// for the slowest participant, so this is the max over all GCDs.
  double step_slowdown() const;
  /// Count of stragglers in the job (diagnostics; O(n)).
  std::int64_t straggler_count() const;

  /// Deterministic per-link bandwidth factor in (0, 1]: 1 for healthy
  /// links, `link_degrade_factor` for the hash-selected degraded set.
  double link_bandwidth_factor(std::int64_t link) const;
  /// Slowest-link factor across the job's inter-node links (one injection
  /// link per node).
  double worst_link_factor() const;

 private:
  /// Uniform [0,1) hash of (config seed, stream tag, id).
  double property_hash(std::uint64_t tag, std::int64_t id) const;

  std::int64_t gcds_;
  FaultModelConfig config_;
  Rng failure_rng_;
};

/// Cost of getting a failed job back to the last optimizer step.
struct RecoveryCostConfig {
  /// Failure detection (collective timeout) before anyone reacts.
  double detect_seconds = 30.0;
  /// Scheduler relaunch + process/comm re-initialization.
  double restart_seconds = 180.0;
  /// Aggregate parallel-filesystem bandwidths the job achieves for
  /// checkpoint write/read (bytes/s).
  double write_bandwidth = 50.0e9;
  double read_bandwidth = 100.0e9;
};

/// Full-state checkpoint payload: fp32 parameters plus the two fp32 AdamW
/// moment buffers (metadata is noise at this scale).
double checkpoint_bytes(std::int64_t parameters);

/// Seconds to write / read one full-state checkpoint.
double checkpoint_write_seconds(std::int64_t parameters,
                                const RecoveryCostConfig& recovery);
double checkpoint_read_seconds(std::int64_t parameters,
                               const RecoveryCostConfig& recovery);

/// Mean wall cost of one failure, excluding replayed work: detect +
/// restart + checkpoint reload.
double recovery_seconds(std::int64_t parameters,
                        const RecoveryCostConfig& recovery);

/// Expected fraction of wall time spent on useful training when
/// checkpointing every `interval_seconds` of useful work costs
/// `checkpoint_seconds` and failures arrive at `failure_rate` per second:
///   goodput(tau) = tau / ((tau + C) * (1 + lambda * (R + (tau + C) / 2))).
/// Small tau wastes time writing checkpoints; large tau replays too much
/// lost work — the interior optimum is the Young/Daly tradeoff.
double expected_goodput(double interval_seconds, double checkpoint_seconds,
                        double failure_rate, double recovery_seconds);

/// Young/Daly optimal checkpoint interval sqrt(2 C / lambda).
double young_daly_interval(double checkpoint_seconds, double failure_rate);

struct GoodputPoint {
  double interval_seconds = 0.0;
  double goodput = 0.0;  // expected useful fraction, 0..1
};

/// Analytic goodput at each checkpoint interval (same formula as
/// `expected_goodput`; convenience for sweeps/benches).
std::vector<GoodputPoint> goodput_sweep(const FaultModel& faults,
                                        const RecoveryCostConfig& recovery,
                                        std::int64_t parameters,
                                        const std::vector<double>& intervals);

/// Outcome of a simulated run (discrete-event, seeded by the FaultModel).
struct SimulatedRun {
  double wall_seconds = 0.0;
  double useful_seconds = 0.0;
  std::int64_t failures = 0;
  std::int64_t checkpoints_written = 0;
  double lost_work_seconds = 0.0;

  double goodput() const {
    return wall_seconds > 0.0 ? useful_seconds / wall_seconds : 0.0;
  }
};

/// Simulates a run needing `useful_target_seconds` of training under the
/// model's failure stream: work proceeds at the straggler-slowed rate,
/// a checkpoint (costing `checkpoint_seconds`) is written after every
/// `interval_seconds` of useful work, and each failure pays
/// detect + restart + reload and replays everything since the last
/// checkpoint. Deterministic for a given FaultModel stream state.
SimulatedRun simulate_run(FaultModel& faults,
                          const RecoveryCostConfig& recovery,
                          std::int64_t parameters, double interval_seconds,
                          double useful_target_seconds);

}  // namespace orbit2::hwsim
