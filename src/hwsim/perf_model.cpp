#include "hwsim/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/obs.hpp"

namespace orbit2::hwsim {

StepTimeBreakdown estimate_step(const WorkloadSpec& spec,
                                const ParallelismPlan& plan,
                                const FrontierTopology& topo) {
  const WorkloadCosts costs = analyze_workload(spec);
  const model::ModelConfig& c = spec.config;
  StepTimeBreakdown out;

  // ---- Compute: the sample's FLOPs split across the model instance ------
  const double instance_gpus =
      static_cast<double>(plan.gpus_per_model_instance());
  const double flops_per_gpu = costs.train_flops / instance_gpus;
  out.compute_seconds = flops_per_gpu / topo.achieved_flops(
                                            static_cast<double>(c.embed_dim));

  // ---- Software overheads ------------------------------------------------
  // Forward + backward launches per layer, plus the fixed step cost (host
  // sync, IO, quad-tree construction on the CPUs).
  out.overhead_seconds =
      2.0 * static_cast<double>(c.layers) * topo.per_layer_overhead +
      topo.per_step_overhead;

  // ---- Communication ------------------------------------------------------
  double comm = 0.0;
  const double param_bytes = static_cast<double>(costs.parameters) * 2.0;
  // TP: two activation all-reduces per layer (attention out, MLP out) over
  // the tokens resident on this instance.
  if (plan.tensor_parallel > 1) {
    const double act_bytes = static_cast<double>(costs.trunk_tokens_per_tile) /
                             static_cast<double>(plan.sequence_shard) *
                             static_cast<double>(c.embed_dim) * 2.0;
    comm += 2.0 * static_cast<double>(c.layers) *
            allreduce_time(topo, act_bytes, plan.tensor_parallel);
  }
  // Layer-wise FSDP: all-gather each layer's shard forward and backward,
  // plus reduce-scatter of layer grads. Hybrid-OP halves gathered volume.
  if (plan.fsdp > 1) {
    // Each FSDP rank regathers only its TP shard of the layer; Hybrid-OP
    // alternating-dimension sharding halves the gathered volume again.
    const double layer_bytes =
        static_cast<double>(c.trunk_parameter_count()) /
        static_cast<double>(std::max<std::int64_t>(1, c.layers)) * 2.0 / 2.0 /
        static_cast<double>(plan.tensor_parallel);
    comm += 3.0 * static_cast<double>(c.layers) *
            allgather_time(topo, layer_bytes, plan.fsdp);
  }
  // TILES halo exchange: each tile sends/receives its halo strip once.
  if (plan.tiles > 1) {
    const double halo_pixels =
        4.0 * std::sqrt(static_cast<double>(spec.lr_h) *
                        static_cast<double>(spec.lr_w) /
                        static_cast<double>(plan.tiles)) *
        2.0;  // perimeter x halo width 2
    comm += p2p_time(
        topo, halo_pixels * static_cast<double>(c.in_channels) * 2.0, true);
  }
  // Gradient all-reduce once per batch across TILES x DDP replicas,
  // amortized over the per-replica batch (the paper's "minimal
  // communication frequency": one collective per data batch).
  constexpr double kBatchPerReplica = 8.0;
  const std::int64_t replicas = plan.tiles * plan.ddp;
  if (replicas > 1) {
    comm += allreduce_time(
                topo,
                param_bytes /
                    static_cast<double>(plan.tensor_parallel * plan.fsdp),
                replicas) /
            kBatchPerReplica;
  }
  // Communication overlaps with compute (FSDP prefetch, bucketed DDP
  // all-reduce); only the non-overlappable remainder is visible wall time.
  constexpr double kOverlapFraction = 0.9;
  const double visible_comm =
      std::max(comm - kOverlapFraction * out.compute_seconds, 0.1 * comm);
  out.communication_seconds = visible_comm;

  // Synchronization jitter: at larger scales every collective waits for the
  // slowest worker; modeled as a log-scale straggler penalty. This is what
  // keeps measured strong-scaling efficiency in the 92-98% band instead of
  // an unrealistic 100%.
  constexpr double kJitterPerLog2Gpu = 0.008;
  const double jitter =
      1.0 + kJitterPerLog2Gpu *
                std::log2(static_cast<double>(plan.total_gpus));

  out.total_seconds = (out.compute_seconds + out.overhead_seconds +
                       out.communication_seconds) *
                      jitter;
  out.per_sample_seconds = out.total_seconds / static_cast<double>(plan.ddp);
  out.sustained_flops = costs.train_flops / out.per_sample_seconds;

  if (obs::enabled()) {
    // Modeled time lands on the simulated-clock track: one envelope span
    // per estimated step with the phase breakdown laid out consecutively
    // inside it, so traces never mix modeled and wall durations.
    const double start = obs::sim_advance(out.total_seconds);
    obs::sim_span("hwsim/step", "hwsim.sim", start, out.total_seconds);
    obs::sim_span("hwsim/compute", "hwsim.sim", start, out.compute_seconds);
    obs::sim_span("hwsim/overhead", "hwsim.sim",
                  start + out.compute_seconds, out.overhead_seconds);
    obs::sim_span("hwsim/comm", "hwsim.sim",
                  start + out.compute_seconds + out.overhead_seconds,
                  out.communication_seconds);
    ORBIT2_OBS_COUNT("hwsim.estimated_steps", 1);
  }
  return out;
}

std::vector<ScalingPoint> strong_scaling_sweep(
    const WorkloadSpec& spec, const std::vector<std::int64_t>& gpu_counts,
    const FrontierTopology& topo) {
  ORBIT2_REQUIRE(!gpu_counts.empty(), "empty sweep");
  std::vector<ScalingPoint> points;
  points.reserve(gpu_counts.size());
  for (std::int64_t gpus : gpu_counts) {
    ScalingPoint point;
    point.gpus = gpus;
    point.plan = plan_parallelism(spec.config, gpus, spec.tiles);
    const StepTimeBreakdown step = estimate_step(spec, point.plan, topo);
    point.per_sample_seconds = step.per_sample_seconds;
    point.sustained_flops = step.sustained_flops;
    points.push_back(point);
  }
  const ScalingPoint& base = points.front();
  for (ScalingPoint& point : points) {
    const double speedup = base.per_sample_seconds / point.per_sample_seconds;
    const double ideal = static_cast<double>(point.gpus) /
                         static_cast<double>(base.gpus);
    point.efficiency = speedup / ideal;
  }
  return points;
}

std::vector<TilesSpeedupPoint> tiles_speedup_sweep(
    const WorkloadSpec& tiled_spec,
    const std::vector<std::int64_t>& gpu_counts,
    const FrontierTopology& topo) {
  // Baseline: same model/task, no tiling, 8 GPUs.
  WorkloadSpec baseline_spec = tiled_spec;
  baseline_spec.tiles = 1;
  const ParallelismPlan base_plan =
      plan_parallelism(baseline_spec.config, 8, 1);
  const double baseline =
      estimate_step(baseline_spec, base_plan, topo).per_sample_seconds;

  std::vector<TilesSpeedupPoint> points;
  points.reserve(gpu_counts.size());
  for (std::int64_t gpus : gpu_counts) {
    const ParallelismPlan plan =
        plan_parallelism(tiled_spec.config, gpus, tiled_spec.tiles);
    const double t = estimate_step(tiled_spec, plan, topo).per_sample_seconds;
    points.push_back({gpus, baseline / t});
  }
  return points;
}

MaxSequenceResult max_sequence_length(const model::ModelConfig& config,
                                      float compression, std::int64_t tiles,
                                      std::int64_t gpus,
                                      const FrontierTopology& topo) {
  MaxSequenceResult result;
  // Output grids are 2:1 (global lat x lon), aligned so tiling (4x4 grid at
  // 16 tiles) and patching stay integral.
  const std::int64_t tile_side =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                    std::llround(std::sqrt(
                                        static_cast<double>(tiles)))));
  const std::int64_t align =
      config.patch * config.upscale * tile_side * 2;

  auto spec_for = [&](std::int64_t hr_h) {
    WorkloadSpec spec;
    spec.config = config;
    spec.lr_h = hr_h / config.upscale;
    spec.lr_w = 2 * hr_h / config.upscale;
    spec.tiles = tiles;
    spec.compression = compression;
    return spec;
  };
  // The "standard ViT" baseline of Tables II/III runs without ORBIT-2's
  // orthogonal parallelism stack: plain DDP, model and sequence replicated
  // per GPU (this is why the 10B ViT row is OOM at any sequence length).
  ParallelismPlan plan;
  if (config.architecture == model::Architecture::kViTBaseline) {
    plan.total_gpus = gpus;
    plan.ddp = gpus;
  } else {
    plan = plan_parallelism(config, gpus, tiles, /*favor_sequence=*/true);
  }
  auto fits = [&](std::int64_t hr_h) {
    return check_fits(spec_for(hr_h), plan, topo);
  };

  // Exponential probe then binary search on the output height.
  std::int64_t lo = align;
  if (!fits(lo).fits) {
    result.feasible = false;
    result.at_limit = fits(lo).breakdown;
    return result;
  }
  std::int64_t hi = lo;
  while (fits(hi * 2).fits && hi < (std::int64_t{1} << 22)) hi *= 2;
  std::int64_t best = hi;
  std::int64_t low = hi, high = hi * 2;
  while (low + align < high) {
    const std::int64_t mid = ((low + high) / 2) / align * align;
    if (mid <= low) break;
    if (fits(mid).fits) {
      best = mid;
      low = mid;
    } else {
      high = mid;
    }
  }

  const WorkloadSpec spec = spec_for(best);
  const WorkloadCosts costs = analyze_workload(spec);
  result.feasible = true;
  result.sequence_length = costs.sequence_length;
  result.out_h = spec.hr_h();
  result.out_w = spec.hr_w();
  result.resolution_km = global_resolution_km(spec.hr_w());
  result.at_limit = fits(best).breakdown;
  return result;
}

}  // namespace orbit2::hwsim
