#pragma once
// Analytic workload accounting: parameters, sequence lengths, FLOPs and
// activation bytes for a (model config, task geometry, tiles, compression)
// combination. All formulas follow the real layer implementations in
// src/model, so planning a 10B configuration never allocates it; the tests
// cross-check the analytic parameter counts against real instantiated
// modules at tiny/small scale.

#include "model/config.hpp"

namespace orbit2::hwsim {

struct WorkloadSpec {
  model::ModelConfig config;
  /// LR input grid (the model's working resolution).
  std::int64_t lr_h = 180;
  std::int64_t lr_w = 360;
  /// TILES tile count (1 = no tiling) and quad-tree compression factor.
  std::int64_t tiles = 1;
  float compression = 1.0f;

  std::int64_t hr_h() const { return lr_h * config.upscale; }
  std::int64_t hr_w() const { return lr_w * config.upscale; }
};

struct WorkloadCosts {
  /// Exact total trainable parameters for the architecture.
  std::int64_t parameters = 0;
  /// Paper-style sequence length: HR pixels * out_channels / patch^2.
  std::int64_t sequence_length = 0;
  /// Tokens actually entering the ViT trunk, per tile, after channel
  /// aggregation and compression (Reslim) or on the HR grid (baseline).
  std::int64_t trunk_tokens_per_tile = 0;
  /// Training FLOPs (fwd + bwd) for one full sample across all tiles.
  double train_flops = 0.0;
  /// Forward-only FLOPs.
  double forward_flops = 0.0;
  /// Activation bytes for one tile's trunk (flash-attention path).
  double trunk_activation_bytes_per_tile = 0.0;
  /// Extra quadratic score memory per tile (naive attention only; 0 for
  /// flash). This is what OOMs the baseline ViT.
  double attention_score_bytes_per_tile = 0.0;
  /// HR input/output/decoder buffers for one tile (autograd copies incl.).
  double io_bytes_per_tile = 0.0;
};

/// Exact parameter count of the full model (trunk + embeddings + decoder +
/// aggregation / channel conv + residual path).
std::int64_t total_parameter_count(const model::ModelConfig& config);

/// Full cost analysis.
WorkloadCosts analyze_workload(const WorkloadSpec& spec);

/// Global resolution (km) of an output grid spanning the Earth: equatorial
/// circumference / width.
double global_resolution_km(std::int64_t hr_w);

}  // namespace orbit2::hwsim
