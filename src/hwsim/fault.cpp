#include "hwsim/fault.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace orbit2::hwsim {

namespace {

// Stream tags keep the straggler and link hash families disjoint from each
// other and from the failure stream seed.
constexpr std::uint64_t kStragglerTag = 0x5742a6611ull;
constexpr std::uint64_t kLinkTag = 0x11bde64decull;

// Bytes per parameter of full fp32 training state: weights + AdamW m + v.
constexpr double kStateBytesPerParam = 3.0 * 4.0;

double uniform_from_bits(std::uint64_t bits) {
  // 53-bit mantissa trick: uniform in [0, 1).
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FaultModel::FaultModel(std::int64_t gcds, FaultModelConfig config)
    : gcds_(gcds), config_(config), failure_rng_(config.seed) {
  ORBIT2_REQUIRE(gcds >= 1, "fault model needs at least one GCD, got "
                                << gcds);
  ORBIT2_REQUIRE(config.gcd_mtbf_seconds > 0.0,
                 "per-GCD MTBF must be positive, got "
                     << config.gcd_mtbf_seconds);
  ORBIT2_REQUIRE(
      config.straggler_fraction >= 0.0 && config.straggler_fraction <= 1.0,
      "straggler fraction must be in [0, 1], got "
          << config.straggler_fraction);
  ORBIT2_REQUIRE(config.straggler_slowdown >= 1.0,
                 "straggler slowdown must be >= 1, got "
                     << config.straggler_slowdown);
  ORBIT2_REQUIRE(
      config.link_degrade_fraction >= 0.0 &&
          config.link_degrade_fraction <= 1.0,
      "link degrade fraction must be in [0, 1], got "
          << config.link_degrade_fraction);
  ORBIT2_REQUIRE(
      config.link_degrade_factor > 0.0 && config.link_degrade_factor <= 1.0,
      "link degrade factor must be in (0, 1], got "
          << config.link_degrade_factor);
}

double FaultModel::failure_rate() const {
  // Independent exponential per-GCD failures superpose: rates add.
  return static_cast<double>(gcds_) / config_.gcd_mtbf_seconds;
}

double FaultModel::mean_time_between_failures() const {
  return 1.0 / failure_rate();
}

double FaultModel::sample_time_to_failure() {
  // Inverse-CDF exponential draw; 1 - u keeps log() away from zero.
  const double u = failure_rng_.uniform();
  return -std::log(1.0 - u) / failure_rate();
}

void FaultModel::reseed(std::uint64_t seed) { failure_rng_ = Rng(seed); }

double FaultModel::property_hash(std::uint64_t tag, std::int64_t id) const {
  std::uint64_t id_state = static_cast<std::uint64_t>(id);
  std::uint64_t state = (config_.seed ^ tag) ^ splitmix64(id_state);
  return uniform_from_bits(splitmix64(state));
}

double FaultModel::straggler_factor(std::int64_t gcd) const {
  ORBIT2_REQUIRE(gcd >= 0 && gcd < gcds_,
                 "GCD index " << gcd << " out of range [0, " << gcds_ << ")");
  return property_hash(kStragglerTag, gcd) < config_.straggler_fraction
             ? config_.straggler_slowdown
             : 1.0;
}

double FaultModel::step_slowdown() const {
  for (std::int64_t g = 0; g < gcds_; ++g) {
    if (straggler_factor(g) > 1.0) return config_.straggler_slowdown;
  }
  return 1.0;
}

std::int64_t FaultModel::straggler_count() const {
  std::int64_t count = 0;
  for (std::int64_t g = 0; g < gcds_; ++g) {
    if (straggler_factor(g) > 1.0) ++count;
  }
  return count;
}

double FaultModel::link_bandwidth_factor(std::int64_t link) const {
  ORBIT2_REQUIRE(link >= 0, "link index must be non-negative, got " << link);
  return property_hash(kLinkTag, link) < config_.link_degrade_fraction
             ? config_.link_degrade_factor
             : 1.0;
}

double FaultModel::worst_link_factor() const {
  // One injection link per node (8 GCDs per Frontier node).
  const std::int64_t links = std::max<std::int64_t>(1, (gcds_ + 7) / 8);
  double worst = 1.0;
  for (std::int64_t l = 0; l < links; ++l) {
    worst = std::min(worst, link_bandwidth_factor(l));
  }
  return worst;
}

double checkpoint_bytes(std::int64_t parameters) {
  ORBIT2_REQUIRE(parameters >= 0,
                 "parameter count must be non-negative, got " << parameters);
  return static_cast<double>(parameters) * kStateBytesPerParam;
}

double checkpoint_write_seconds(std::int64_t parameters,
                                const RecoveryCostConfig& recovery) {
  ORBIT2_REQUIRE(recovery.write_bandwidth > 0.0,
                 "write bandwidth must be positive");
  return checkpoint_bytes(parameters) / recovery.write_bandwidth;
}

double checkpoint_read_seconds(std::int64_t parameters,
                               const RecoveryCostConfig& recovery) {
  ORBIT2_REQUIRE(recovery.read_bandwidth > 0.0,
                 "read bandwidth must be positive");
  return checkpoint_bytes(parameters) / recovery.read_bandwidth;
}

double recovery_seconds(std::int64_t parameters,
                        const RecoveryCostConfig& recovery) {
  return recovery.detect_seconds + recovery.restart_seconds +
         checkpoint_read_seconds(parameters, recovery);
}

double expected_goodput(double interval_seconds, double checkpoint_seconds,
                        double failure_rate, double recovery_seconds) {
  ORBIT2_REQUIRE(interval_seconds > 0.0,
                 "checkpoint interval must be positive, got "
                     << interval_seconds);
  ORBIT2_REQUIRE(checkpoint_seconds >= 0.0 && failure_rate >= 0.0 &&
                     recovery_seconds >= 0.0,
                 "costs and failure rate must be non-negative");
  // One cycle does `tau` useful seconds in `tau + C` wall seconds; each
  // failure (lambda per wall second) costs recovery plus on average half a
  // cycle of replayed work.
  const double cycle = interval_seconds + checkpoint_seconds;
  const double failure_overhead =
      failure_rate * (recovery_seconds + 0.5 * cycle);
  return interval_seconds / (cycle * (1.0 + failure_overhead));
}

double young_daly_interval(double checkpoint_seconds, double failure_rate) {
  ORBIT2_REQUIRE(checkpoint_seconds > 0.0 && failure_rate > 0.0,
                 "Young/Daly needs positive checkpoint cost and failure rate");
  return std::sqrt(2.0 * checkpoint_seconds / failure_rate);
}

std::vector<GoodputPoint> goodput_sweep(const FaultModel& faults,
                                        const RecoveryCostConfig& recovery,
                                        std::int64_t parameters,
                                        const std::vector<double>& intervals) {
  const double write_cost = checkpoint_write_seconds(parameters, recovery);
  const double recover_cost = recovery_seconds(parameters, recovery);
  const double rate = faults.failure_rate();
  std::vector<GoodputPoint> points;
  points.reserve(intervals.size());
  for (double interval : intervals) {
    GoodputPoint point;
    point.interval_seconds = interval;
    point.goodput = expected_goodput(interval, write_cost, rate, recover_cost);
    points.push_back(point);
  }
  return points;
}

SimulatedRun simulate_run(FaultModel& faults,
                          const RecoveryCostConfig& recovery,
                          std::int64_t parameters, double interval_seconds,
                          double useful_target_seconds) {
  ORBIT2_REQUIRE(interval_seconds > 0.0,
                 "checkpoint interval must be positive, got "
                     << interval_seconds);
  ORBIT2_REQUIRE(useful_target_seconds >= 0.0,
                 "useful target must be non-negative, got "
                     << useful_target_seconds);
  const double slowdown = faults.step_slowdown();
  const double write_cost = checkpoint_write_seconds(parameters, recovery);
  const double recover_cost = recovery_seconds(parameters, recovery);

  SimulatedRun run;
  double ttf = faults.sample_time_to_failure();
  double useful = 0.0;
  while (useful < useful_target_seconds) {
    // Next segment: up to one checkpoint interval of useful work (at the
    // straggler-slowed wall rate) followed by a checkpoint write.
    const double segment_useful =
        std::min(interval_seconds, useful_target_seconds - useful);
    const double segment_wall = segment_useful * slowdown + write_cost;
    if (ttf >= segment_wall) {
      // Segment survives; the failure clock keeps ticking into the next one.
      run.wall_seconds += segment_wall;
      ttf -= segment_wall;
      useful += segment_useful;
      ++run.checkpoints_written;
    } else {
      // Failure mid-segment: everything since the last checkpoint is lost.
      run.wall_seconds += ttf + recover_cost;
      run.lost_work_seconds += std::min(ttf, segment_useful * slowdown);
      ++run.failures;
      ttf = faults.sample_time_to_failure();
    }
  }
  run.useful_seconds = useful;
  return run;
}

}  // namespace orbit2::hwsim
