#include "hwsim/hardware.hpp"

#include <cmath>

#include "core/error.hpp"

namespace orbit2::hwsim {

LinkProfile communicator_link(const FrontierTopology& topo,
                              std::int64_t participants) {
  ORBIT2_REQUIRE(participants >= 1, "communicator needs >= 1 participant");
  if (participants <= topo.gpus_per_node) {
    return {topo.intra_node_bandwidth, topo.intra_node_latency};
  }
  // Spans nodes: the ring crosses Slingshot links; per-GPU share of node
  // injection bandwidth bounds throughput.
  const double per_gpu_injection =
      topo.inter_node_bandwidth / static_cast<double>(topo.gpus_per_node);
  return {per_gpu_injection, topo.inter_node_latency};
}

double allreduce_time(const FrontierTopology& topo, double bytes,
                      std::int64_t participants) {
  ORBIT2_REQUIRE(bytes >= 0, "negative payload");
  if (participants <= 1 || bytes == 0.0) return 0.0;
  const LinkProfile link = communicator_link(topo, participants);
  const double n = static_cast<double>(participants);
  // Bandwidth term: ring. Latency term: hierarchical/tree (RCCL-style), so
  // huge communicators don't pay O(n) hop latency.
  return 2.0 * (n - 1.0) / n * bytes / link.bandwidth +
         2.0 * std::ceil(std::log2(n)) * link.latency;
}

double allgather_time(const FrontierTopology& topo, double bytes,
                      std::int64_t participants) {
  if (participants <= 1 || bytes == 0.0) return 0.0;
  const LinkProfile link = communicator_link(topo, participants);
  const double n = static_cast<double>(participants);
  return (n - 1.0) / n * bytes / link.bandwidth +
         std::ceil(std::log2(n)) * link.latency;
}

double broadcast_time(const FrontierTopology& topo, double bytes,
                      std::int64_t participants) {
  if (participants <= 1 || bytes == 0.0) return 0.0;
  const LinkProfile link = communicator_link(topo, participants);
  const double hops = std::ceil(std::log2(static_cast<double>(participants)));
  return hops * (bytes / link.bandwidth + link.latency);
}

double p2p_time(const FrontierTopology& topo, double bytes,
                bool crosses_node) {
  if (bytes == 0.0) return 0.0;
  if (crosses_node) {
    return bytes / topo.inter_node_bandwidth + topo.inter_node_latency;
  }
  return bytes / topo.intra_node_bandwidth + topo.intra_node_latency;
}

}  // namespace orbit2::hwsim
