#pragma once
// Orthogonal parallelism planning (paper §III-C, Fig 5).
//
// Four composable strategies, mapped to the hardware hierarchy by
// communication frequency:
//   * Tensor model parallel (TP)  — highest traffic, within a node.
//   * Layer-wise FSDP             — moderate traffic, neighbouring nodes in
//                                   the same TILES group.
//   * TILES sequence parallel     — one gradient all-reduce per batch.
//   * DDP                         — one gradient all-reduce per batch.
// A plan factors the GPU count as tp * fsdp * tiles * seq_shard * ddp, and
// the memory model evaluates the per-GPU footprint under that plan
// (Hybrid-OP alternating-dimension sharding reduces FSDP gather volume and
// layer-wise wrapping bounds the transient unsharded layer).

#include <string>

#include "hwsim/hardware.hpp"
#include "hwsim/workload.hpp"

namespace orbit2::hwsim {

struct ParallelismPlan {
  std::int64_t total_gpus = 8;
  std::int64_t tensor_parallel = 1;  // within node
  std::int64_t fsdp = 1;             // across neighbouring nodes
  std::int64_t tiles = 1;            // TILES groups
  std::int64_t sequence_shard = 1;   // extra token sharding within a tile
  std::int64_t ddp = 1;              // data parallel replicas

  std::int64_t gpus_per_model_instance() const {
    return tensor_parallel * fsdp * tiles * sequence_shard;
  }
  std::string to_string() const;
};

/// Builds the Fig-5 style plan for `gpus` GPUs: TP sized so the sharded
/// optimizer state fits, FSDP = 2 (neighbouring nodes) when GPUs allow,
/// TILES groups = `tiles`, and the remainder going to DDP. When
/// `favor_sequence` is set (max-sequence-length searches), leftover GPUs
/// shard the sequence instead of adding DDP replicas.
ParallelismPlan plan_parallelism(const model::ModelConfig& config,
                                 std::int64_t gpus, std::int64_t tiles,
                                 bool favor_sequence = false);

/// Per-GPU memory breakdown under a plan. All quantities in bytes.
struct MemoryBreakdown {
  double parameter_bytes = 0.0;   // bf16 shard
  double gradient_bytes = 0.0;    // bf16 shard
  double optimizer_bytes = 0.0;   // fp32 master + two moments, sharded
  double transient_layer_bytes = 0.0;  // layer-wise FSDP gather
  double activation_bytes = 0.0;
  double attention_score_bytes = 0.0;
  double io_bytes = 0.0;

  double total() const {
    return parameter_bytes + gradient_bytes + optimizer_bytes +
           transient_layer_bytes + activation_bytes + attention_score_bytes +
           io_bytes;
  }
};

MemoryBreakdown memory_per_gpu(const WorkloadSpec& spec,
                               const WorkloadCosts& costs,
                               const ParallelismPlan& plan,
                               const FrontierTopology& topo);

/// Typed OOM outcome (a result, not an exception, so sweeps can record OOM
/// rows exactly as Tables II/III do).
struct FitResult {
  bool fits = false;
  MemoryBreakdown breakdown;
  double budget_bytes = 0.0;
};

FitResult check_fits(const WorkloadSpec& spec, const ParallelismPlan& plan,
                     const FrontierTopology& topo);

}  // namespace orbit2::hwsim
