#include "hwsim/sequence_parallel.hpp"

#include <cmath>
#include <limits>

#include "core/obs.hpp"

namespace orbit2::hwsim {

Tensor ring_attention(const Tensor& q, const Tensor& k, const Tensor& v,
                      float scale, std::int64_t devices, CommStats& stats) {
  ORBIT2_REQUIRE(q.rank() == 2 && k.rank() == 2 && v.rank() == 2,
                 "ring_attention expects rank-2 Q,K,V");
  ORBIT2_REQUIRE(k.dim(0) == v.dim(0) && q.dim(1) == k.dim(1),
                 "ring_attention operand mismatch");
  const std::int64_t n = q.dim(0);
  const std::int64_t d = q.dim(1);
  const std::int64_t dv = v.dim(1);
  ORBIT2_REQUIRE(devices >= 1 && n % devices == 0,
                 "tokens " << n << " must divide across " << devices
                           << " devices");
  const std::int64_t rows_per_device = n / devices;
  ORBIT2_REQUIRE(k.dim(0) == n, "ring layout requires Nq == Nk");
  ORBIT2_OBS_SPAN_ARG("ring_attention", "hwsim", "devices", devices);

  // Device-local state: Q shard (static), running output / max / sum.
  Tensor output = Tensor::zeros(Shape{n, dv});
  std::vector<float> row_max(static_cast<std::size_t>(n),
                             -std::numeric_limits<float>::infinity());
  std::vector<float> row_sum(static_cast<std::size_t>(n), 0.0f);

  const float* pq = q.data().data();
  const float* pk = k.data().data();
  const float* pv = v.data().data();
  float* po = output.data().data();

  // `step` rotates the KV blocks around the ring: at step s, device dev
  // holds KV block (dev + s) mod devices. Every step except the first
  // involved a real transfer of one KV block pair per device.
  for (std::int64_t step = 0; step < devices; ++step) {
    if (step > 0) {
      const std::int64_t rotation_bytes =
          devices * rows_per_device * (d + dv) *
          static_cast<std::int64_t>(sizeof(float));
      stats.allgather_bytes += rotation_bytes;
      ++stats.collective_calls;
      ORBIT2_OBS_COUNT("hwsim.allgather_bytes", rotation_bytes);
      ORBIT2_OBS_COUNT("hwsim.collective_calls", 1);
    }
    for (std::int64_t dev = 0; dev < devices; ++dev) {
      const std::int64_t kv_block = (dev + step) % devices;
      const std::int64_t q0 = dev * rows_per_device;
      const std::int64_t k0 = kv_block * rows_per_device;

      // Online-softmax combine of this KV block into the device's rows.
      for (std::int64_t i = q0; i < q0 + rows_per_device; ++i) {
        const float* qrow = pq + i * d;
        float block_max = -std::numeric_limits<float>::infinity();
        // Scores for this block.
        std::vector<float> scores(static_cast<std::size_t>(rows_per_device));
        for (std::int64_t j = 0; j < rows_per_device; ++j) {
          const float* krow = pk + (k0 + j) * d;
          double acc = 0.0;
          for (std::int64_t t = 0; t < d; ++t) {
            acc += static_cast<double>(qrow[t]) * krow[t];
          }
          scores[static_cast<std::size_t>(j)] = static_cast<float>(acc) * scale;
          block_max = std::max(block_max, scores[static_cast<std::size_t>(j)]);
        }
        const float old_max = row_max[static_cast<std::size_t>(i)];
        const float new_max = std::max(old_max, block_max);
        const float correction =
            (old_max == -std::numeric_limits<float>::infinity())
                ? 0.0f
                : std::exp(old_max - new_max);
        float* orow = po + i * dv;
        for (std::int64_t t = 0; t < dv; ++t) orow[t] *= correction;
        row_sum[static_cast<std::size_t>(i)] *= correction;
        for (std::int64_t j = 0; j < rows_per_device; ++j) {
          const float p = std::exp(scores[static_cast<std::size_t>(j)] - new_max);
          row_sum[static_cast<std::size_t>(i)] += p;
          const float* vrow = pv + (k0 + j) * dv;
          for (std::int64_t t = 0; t < dv; ++t) orow[t] += p * vrow[t];
        }
        row_max[static_cast<std::size_t>(i)] = new_max;
      }
    }
  }

  for (std::int64_t i = 0; i < n; ++i) {
    ORBIT2_CHECK(row_sum[static_cast<std::size_t>(i)] > 0.0f,
                 "ring attention: zero normalizer at row " << i);
    const float inv = 1.0f / row_sum[static_cast<std::size_t>(i)];
    float* orow = po + i * dv;
    for (std::int64_t t = 0; t < dv; ++t) orow[t] *= inv;
  }
  return output;
}

std::int64_t ring_attention_comm_bytes(std::int64_t tokens, std::int64_t dim,
                                       std::int64_t devices) {
  ORBIT2_REQUIRE(devices >= 1 && tokens % devices == 0,
                 "tokens must divide across devices");
  // (devices-1) rotation steps; each moves one KV block pair per device.
  const std::int64_t rows_per_device = tokens / devices;
  return (devices - 1) * devices * rows_per_device * 2 * dim *
         static_cast<std::int64_t>(sizeof(float));
}

std::int64_t tiles_halo_comm_bytes(std::int64_t grid_h, std::int64_t grid_w,
                                   std::int64_t tiles, std::int64_t halo,
                                   std::int64_t channels) {
  ORBIT2_REQUIRE(tiles >= 1 && halo >= 0, "bad tile geometry");
  if (tiles == 1 || halo == 0) return 0;
  const auto side = static_cast<std::int64_t>(
      std::llround(std::sqrt(static_cast<double>(tiles))));
  const std::int64_t tile_h = grid_h / side;
  const std::int64_t tile_w = grid_w / side;
  // Each tile receives halo strips along its perimeter once per sample.
  const std::int64_t strip = 2 * (tile_h + tile_w) * halo;
  return tiles * strip * channels * static_cast<std::int64_t>(sizeof(float));
}

}  // namespace orbit2::hwsim
