#include "fft/fft.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>

#include "core/cache.hpp"
#include "core/kernels.hpp"
#include "core/obs.hpp"
#include "core/simd/simd.hpp"

namespace orbit2 {

namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// Precomputed per-length transform state. Twiddles are generated with the
// exact sequential `w *= root` recurrence the in-loop version used, so a
// plan-driven butterfly multiplies by bit-identical factors and the
// transform output is unchanged down to the last ulp — the caches here are
// pure call-amortization, not an algorithm change.
struct Radix2Plan {
  // bitrev[i] is the reversal target the incremental swap loop visits.
  std::vector<std::uint32_t> bitrev;
  // Stages concatenated smallest-first; stage `len` starts at len/2 - 1
  // (1 + 2 + ... + len/4 entries precede it) and holds len/2 factors.
  std::vector<Complex> twiddles;
};

Radix2Plan build_radix2_plan(std::size_t n, bool inverse) {
  Radix2Plan plan;
  plan.bitrev.resize(n, 0);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    plan.bitrev[i] = static_cast<std::uint32_t>(j);
  }
  plan.twiddles.reserve(n > 1 ? n - 1 : 0);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const Complex root(std::cos(angle), std::sin(angle));
    Complex w(1.0, 0.0);
    for (std::size_t k = 0; k < len / 2; ++k) {
      plan.twiddles.push_back(w);
      w *= root;
    }
  }
  return plan;
}

std::shared_ptr<const Radix2Plan> radix2_plan(std::size_t n, bool inverse) {
  static LruCache<std::uint64_t, Radix2Plan> cache(16);
  const std::uint64_t key = (static_cast<std::uint64_t>(n) << 1) |
                            static_cast<std::uint64_t>(inverse);
  if (auto hit = cache.lookup(key)) {
    ORBIT2_OBS_COUNT("fft.plan_cache_hits", 1);
    return hit;
  }
  ORBIT2_OBS_COUNT("fft.plan_cache_misses", 1);
  return cache.get_or_create(key, [&] { return build_radix2_plan(n, inverse); });
}

// Iterative radix-2 Cooley-Tukey; requires power-of-two length.
void fft_radix2(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  const std::shared_ptr<const Radix2Plan> plan = radix2_plan(n, inverse);
  const std::uint32_t* rev = plan->bitrev.data();
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  // Each stage's butterflies touch two contiguous half-spans and the
  // contiguous twiddle run, so the whole inner pair-loop is one simd
  // primitive call per span. std::complex<double> guarantees array-of-two-
  // doubles layout, which is the interleaved re/im format the primitive
  // takes. Bit-identical to the std::complex arithmetic it replaces for
  // finite values (see the contract in core/simd/simd.hpp).
  const simd::Ops& sops = simd::ops();
  const Complex* tw = plan->twiddles.data();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const Complex* stage = tw + (len / 2 - 1);
    const double* w = reinterpret_cast<const double*>(stage);
    const std::int64_t half = static_cast<std::int64_t>(len / 2);
    for (std::size_t i = 0; i < n; i += len) {
      sops.fft_butterfly_f64(reinterpret_cast<double*>(a.data() + i),
                             reinterpret_cast<double*>(a.data() + i + len / 2),
                             w, half);
    }
  }
}

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Per-(n, direction) Bluestein state: the chirp and the forward transform
// of the convolution kernel are pure functions of the length, so they are
// computed once and the per-call cost drops from three power-of-two FFTs
// to two (plus the pointwise products).
struct BluesteinPlan {
  std::size_t m = 0;               // padded convolution length
  std::vector<Complex> chirp;      // w_k = exp(sign * i * pi * k^2 / n)
  std::vector<Complex> kernel_fft; // forward FFT of conj(chirp) wrapped to m
};

BluesteinPlan build_bluestein_plan(std::size_t n, bool inverse) {
  const double sign = inverse ? 1.0 : -1.0;
  BluesteinPlan plan;
  plan.chirp.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids precision loss for large k.
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = sign * M_PI * static_cast<double>(k2) / static_cast<double>(n);
    plan.chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }
  plan.m = next_power_of_two(2 * n - 1);
  plan.kernel_fft.assign(plan.m, Complex(0, 0));
  plan.kernel_fft[0] = std::conj(plan.chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    plan.kernel_fft[k] = std::conj(plan.chirp[k]);
    plan.kernel_fft[plan.m - k] = std::conj(plan.chirp[k]);
  }
  fft_radix2(plan.kernel_fft, false);
  return plan;
}

std::shared_ptr<const BluesteinPlan> bluestein_plan(std::size_t n,
                                                    bool inverse) {
  static LruCache<std::uint64_t, BluesteinPlan> cache(16);
  const std::uint64_t key = (static_cast<std::uint64_t>(n) << 1) |
                            static_cast<std::uint64_t>(inverse);
  if (auto hit = cache.lookup(key)) {
    ORBIT2_OBS_COUNT("fft.plan_cache_hits", 1);
    return hit;
  }
  ORBIT2_OBS_COUNT("fft.plan_cache_misses", 1);
  return cache.get_or_create(key,
                             [&] { return build_bluestein_plan(n, inverse); });
}

// Bluestein's chirp-z transform: expresses an arbitrary-length DFT as a
// convolution, evaluated with power-of-two FFTs.
void fft_bluestein(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  const std::shared_ptr<const BluesteinPlan> plan = bluestein_plan(n, inverse);
  const std::size_t m = plan->m;
  const Complex* chirp = plan->chirp.data();

  std::vector<Complex> x(m, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * chirp[k];
  fft_radix2(x, false);
  const Complex* kernel = plan->kernel_fft.data();
  simd::ops().cmul_f64(reinterpret_cast<double*>(x.data()),
                       reinterpret_cast<const double*>(kernel),
                       static_cast<std::int64_t>(m));
  fft_radix2(x, true);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * inv_m * chirp[k];
}

// Row then column 1-D transforms over an H x W row-major coefficient grid.
// One line per work item with chunk-local scratch: every line's arithmetic
// is identical to the serial loop, and lines write disjoint ranges, so the
// result is bit-identical for any thread count.
void transform_2d(std::vector<Complex>& coeffs, std::int64_t h, std::int64_t w,
                  bool inverse) {
  // A line of length n costs ~n log n; target a few lines per chunk on
  // typical grids without making chunks tiny.
  const std::int64_t row_grain = kernels::grain_for(w, 1 << 12);
  kernels::parallel_for(h, row_grain, [&](std::int64_t y0, std::int64_t y1) {
    std::vector<Complex> row(static_cast<std::size_t>(w));
    for (std::int64_t y = y0; y < y1; ++y) {
      std::copy(coeffs.begin() + y * w, coeffs.begin() + (y + 1) * w,
                row.begin());
      fft(row, inverse);
      std::copy(row.begin(), row.end(), coeffs.begin() + y * w);
    }
  });
  const std::int64_t col_grain = kernels::grain_for(h, 1 << 12);
  kernels::parallel_for(w, col_grain, [&](std::int64_t x0, std::int64_t x1) {
    std::vector<Complex> col(static_cast<std::size_t>(h));
    for (std::int64_t x = x0; x < x1; ++x) {
      for (std::int64_t y = 0; y < h; ++y) {
        col[static_cast<std::size_t>(y)] =
            coeffs[static_cast<std::size_t>(y * w + x)];
      }
      fft(col, inverse);
      for (std::int64_t y = 0; y < h; ++y) {
        coeffs[static_cast<std::size_t>(y * w + x)] =
            col[static_cast<std::size_t>(y)];
      }
    }
  });
}

}  // namespace

void fft(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  if (is_power_of_two(n)) {
    fft_radix2(data, inverse);
  } else {
    fft_bluestein(data, inverse);
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (Complex& c : data) c *= inv_n;
  }
}

std::vector<Complex> fft_copy(const std::vector<Complex>& data, bool inverse) {
  std::vector<Complex> out = data;
  fft(out, inverse);
  return out;
}

std::vector<Complex> fft2d(const Tensor& field) {
  ORBIT2_REQUIRE(field.rank() == 2, "fft2d expects [H,W]");
  const std::int64_t h = field.dim(0), w = field.dim(1);
  ORBIT2_OBS_SPAN_ARG("fft2d", "fft", "numel", h * w);
  ORBIT2_OBS_COUNT("fft.fft2d_calls", 1);
  std::vector<Complex> coeffs(static_cast<std::size_t>(h * w));
  const float* src = field.data().data();
  for (std::int64_t i = 0; i < h * w; ++i) {
    coeffs[static_cast<std::size_t>(i)] = Complex(src[i], 0.0);
  }
  transform_2d(coeffs, h, w, /*inverse=*/false);
  return coeffs;
}

void ifft2d(std::vector<Complex>& coeffs, std::int64_t h, std::int64_t w) {
  ORBIT2_REQUIRE(h >= 1 && w >= 1, "ifft2d needs a non-empty grid");
  ORBIT2_REQUIRE(coeffs.size() == static_cast<std::size_t>(h * w),
                 "ifft2d: " << coeffs.size() << " coefficients for " << h << "x"
                            << w);
  ORBIT2_OBS_SPAN_ARG("ifft2d", "fft", "numel", h * w);
  ORBIT2_OBS_COUNT("fft.ifft2d_calls", 1);
  transform_2d(coeffs, h, w, /*inverse=*/true);
}

Tensor ifft2d_real(std::vector<Complex>& coeffs, std::int64_t h,
                   std::int64_t w) {
  ifft2d(coeffs, h, w);
  Tensor field(Shape{h, w});
  float* dst = field.data().data();
  for (std::int64_t i = 0; i < h * w; ++i) {
    dst[i] = static_cast<float>(coeffs[static_cast<std::size_t>(i)].real());
  }
  return field;
}

std::vector<double> radial_power_spectrum(const Tensor& field) {
  const std::int64_t h = field.dim(0), w = field.dim(1);
  const auto coeffs = fft2d(field);
  const std::int64_t max_k = std::min(h, w) / 2;
  std::vector<double> power(static_cast<std::size_t>(max_k + 1), 0.0);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(max_k + 1), 0);

  for (std::int64_t y = 0; y < h; ++y) {
    // Signed wavenumber: frequencies above Nyquist wrap negative.
    const std::int64_t ky = (y <= h / 2) ? y : y - h;
    for (std::int64_t x = 0; x < w; ++x) {
      const std::int64_t kx = (x <= w / 2) ? x : x - w;
      const double kr = std::sqrt(static_cast<double>(ky * ky + kx * kx));
      const std::int64_t bin = static_cast<std::int64_t>(std::llround(kr));
      if (bin > max_k) continue;
      const Complex& c = coeffs[static_cast<std::size_t>(y * w + x)];
      power[static_cast<std::size_t>(bin)] += std::norm(c);
      ++counts[static_cast<std::size_t>(bin)];
    }
  }
  for (std::size_t k = 0; k < power.size(); ++k) {
    if (counts[k] > 0) power[k] /= static_cast<double>(counts[k]);
  }
  return power;
}

}  // namespace orbit2
