#include "fft/fft.hpp"

#include <cmath>

namespace orbit2 {

namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// Iterative radix-2 Cooley-Tukey; requires power-of-two length.
void fft_radix2(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const Complex root(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= root;
      }
    }
  }
}

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Bluestein's chirp-z transform: expresses an arbitrary-length DFT as a
// convolution, evaluated with power-of-two FFTs.
void fft_bluestein(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp: w_k = exp(sign * i * pi * k^2 / n).
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids precision loss for large k.
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = sign * M_PI * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }

  const std::size_t m = next_power_of_two(2 * n - 1);
  std::vector<Complex> x(m, Complex(0, 0));
  std::vector<Complex> y(m, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * chirp[k];
  y[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    y[k] = std::conj(chirp[k]);
    y[m - k] = std::conj(chirp[k]);
  }

  fft_radix2(x, false);
  fft_radix2(y, false);
  for (std::size_t k = 0; k < m; ++k) x[k] *= y[k];
  fft_radix2(x, true);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * inv_m * chirp[k];
}

}  // namespace

void fft(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  if (is_power_of_two(n)) {
    fft_radix2(data, inverse);
  } else {
    fft_bluestein(data, inverse);
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (Complex& c : data) c *= inv_n;
  }
}

std::vector<Complex> fft_copy(const std::vector<Complex>& data, bool inverse) {
  std::vector<Complex> out = data;
  fft(out, inverse);
  return out;
}

std::vector<Complex> fft2d(const Tensor& field) {
  ORBIT2_REQUIRE(field.rank() == 2, "fft2d expects [H,W]");
  const std::int64_t h = field.dim(0), w = field.dim(1);
  std::vector<Complex> coeffs(static_cast<std::size_t>(h * w));
  const float* src = field.data().data();
  for (std::int64_t i = 0; i < h * w; ++i) {
    coeffs[static_cast<std::size_t>(i)] = Complex(src[i], 0.0);
  }

  // Row transforms.
  std::vector<Complex> row(static_cast<std::size_t>(w));
  for (std::int64_t y = 0; y < h; ++y) {
    std::copy(coeffs.begin() + y * w, coeffs.begin() + (y + 1) * w, row.begin());
    fft(row, false);
    std::copy(row.begin(), row.end(), coeffs.begin() + y * w);
  }
  // Column transforms.
  std::vector<Complex> col(static_cast<std::size_t>(h));
  for (std::int64_t x = 0; x < w; ++x) {
    for (std::int64_t y = 0; y < h; ++y) col[static_cast<std::size_t>(y)] = coeffs[static_cast<std::size_t>(y * w + x)];
    fft(col, false);
    for (std::int64_t y = 0; y < h; ++y) coeffs[static_cast<std::size_t>(y * w + x)] = col[static_cast<std::size_t>(y)];
  }
  return coeffs;
}

std::vector<double> radial_power_spectrum(const Tensor& field) {
  const std::int64_t h = field.dim(0), w = field.dim(1);
  const auto coeffs = fft2d(field);
  const std::int64_t max_k = std::min(h, w) / 2;
  std::vector<double> power(static_cast<std::size_t>(max_k + 1), 0.0);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(max_k + 1), 0);

  for (std::int64_t y = 0; y < h; ++y) {
    // Signed wavenumber: frequencies above Nyquist wrap negative.
    const std::int64_t ky = (y <= h / 2) ? y : y - h;
    for (std::int64_t x = 0; x < w; ++x) {
      const std::int64_t kx = (x <= w / 2) ? x : x - w;
      const double kr = std::sqrt(static_cast<double>(ky * ky + kx * kx));
      const std::int64_t bin = static_cast<std::int64_t>(std::llround(kr));
      if (bin > max_k) continue;
      const Complex& c = coeffs[static_cast<std::size_t>(y * w + x)];
      power[static_cast<std::size_t>(bin)] += std::norm(c);
      ++counts[static_cast<std::size_t>(bin)];
    }
  }
  for (std::size_t k = 0; k < power.size(); ++k) {
    if (counts[k] > 0) power[k] /= static_cast<double>(counts[k]);
  }
  return power;
}

}  // namespace orbit2
