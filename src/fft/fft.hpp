#pragma once
// Fast Fourier transforms.
//
// Fig 7(a) compares radially averaged spatial power spectra of downscaled
// temperature fields, so the metrics layer needs a real 2-D FFT. We provide
// an iterative radix-2 Cooley-Tukey transform for power-of-two sizes and
// Bluestein's chirp-z algorithm for arbitrary lengths, composed into a 2-D
// transform and a radial power-spectral-density helper.

#include <complex>
#include <vector>

#include "tensor/tensor.hpp"

namespace orbit2 {

using Complex = std::complex<double>;

/// In-place FFT of arbitrary length (radix-2 when n is a power of two,
/// Bluestein otherwise). `inverse` applies the conjugate transform and the
/// 1/n normalization.
void fft(std::vector<Complex>& data, bool inverse);

/// Out-of-place convenience wrapper.
std::vector<Complex> fft_copy(const std::vector<Complex>& data, bool inverse);

/// 2-D FFT of a [H, W] real field; returns H*W complex coefficients in
/// row-major layout. Row and column transforms are dispatched through the
/// kernel layer (one line per work item, line-local arithmetic), so results
/// are bit-identical for any thread count.
std::vector<Complex> fft2d(const Tensor& field);

/// In-place inverse 2-D FFT of H*W row-major coefficients: inverse row
/// transforms then inverse column transforms, each with the 1/n
/// normalization (so the composition with fft2d is the identity up to
/// rounding). Shared by every consumer that synthesizes fields in Fourier
/// space; parallelized like fft2d with the same bit-identical guarantee.
void ifft2d(std::vector<Complex>& coeffs, std::int64_t h, std::int64_t w);

/// ifft2d + real-part extraction into a [H, W] tensor (imaginary residue is
/// discarded; callers apply conjugate-symmetric filters for which it is
/// numerical noise).
Tensor ifft2d_real(std::vector<Complex>& coeffs, std::int64_t h,
                   std::int64_t w);

/// Radially averaged power spectral density of a [H, W] field: bin k holds
/// the mean |F|^2 over all wavenumbers with round(sqrt(kx^2+ky^2)) == k,
/// for k in [0, min(H,W)/2]. The DC bin is included as bin 0.
std::vector<double> radial_power_spectrum(const Tensor& field);

}  // namespace orbit2
