#pragma once
// Downscaling accuracy metrics (paper §IV "Performance Metrics"):
// R², RMSE, RMSE over distribution extremes (σ1/σ2/σ3 and arbitrary
// percentiles), SSIM, PSNR, the log(x+1) precipitation transform, and a
// spectral fidelity measure built on the radial power spectrum (Fig 7a).

#include <vector>

#include "tensor/tensor.hpp"

namespace orbit2::metrics {

/// Coefficient of determination: 1 - SS_res / SS_tot (vs the truth mean).
double r2_score(const Tensor& prediction, const Tensor& truth);

/// Root-mean-square error.
double rmse(const Tensor& prediction, const Tensor& truth);

/// Value below which `fraction` of the elements fall (linear interpolation
/// between order statistics). fraction in [0, 1].
double quantile(const Tensor& values, double fraction);

/// RMSE restricted to pixels whose truth value is at or above the
/// `fraction` quantile of truth — the paper's "RMSE σ1>68%" style extreme
/// metrics (σ1 = 0.68, σ2 = 0.95, σ3 = 0.997, plus 0.9999 in the text).
double rmse_above_quantile(const Tensor& prediction, const Tensor& truth,
                           double fraction);

/// Peak signal-to-noise ratio in dB; the peak is the truth's value range.
double psnr(const Tensor& prediction, const Tensor& truth);

struct SsimParams {
  std::int64_t window = 8;  // square window, stride = window
  double k1 = 0.01;
  double k2 = 0.03;
};

/// Mean structural similarity over non-overlapping windows, with the
/// dynamic range taken from the truth.
double ssim(const Tensor& prediction, const Tensor& truth,
            const SsimParams& params = {});

/// log(x + 1) transform used for all precipitation RMSE numbers in the
/// paper; negative inputs are clamped to zero first (physical precip).
Tensor log1p_transform(const Tensor& precip);

/// Relative high-frequency spectral error between a prediction's and the
/// truth's radially averaged power spectra: mean over the top half of
/// wavenumbers of |log10(P_pred / P_truth)|. Smaller = better-matched
/// fine-scale variability (Fig 7a's comparison, as a scalar).
double high_frequency_spectral_error(const Tensor& prediction,
                                     const Tensor& truth);

/// Latitude-weighted RMSE: rows weighted by `row_weights` (mean-1 cos(lat)
/// weights from data::latitude_weights).
double weighted_rmse(const Tensor& prediction, const Tensor& truth,
                     const Tensor& row_weights);

/// Bundle of every Table IV column for one variable.
struct EvaluationReport {
  double r2 = 0.0;
  double rmse = 0.0;
  double rmse_sigma1 = 0.0;  // > 68%
  double rmse_sigma2 = 0.0;  // > 95%
  double rmse_sigma3 = 0.0;  // > 99.7%
  double ssim = 0.0;
  double psnr = 0.0;
};

/// Computes the full Table IV row. Both tensors are [H, W] fields (or
/// flattened stacks of them).
EvaluationReport evaluate_field(const Tensor& prediction, const Tensor& truth);

}  // namespace orbit2::metrics
