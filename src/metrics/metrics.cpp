#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "fft/fft.hpp"

namespace orbit2::metrics {

double r2_score(const Tensor& prediction, const Tensor& truth) {
  check_same_shape(prediction, truth, "r2_score");
  ORBIT2_REQUIRE(truth.numel() > 1, "r2 needs more than one element");
  const double mean = truth.mean();
  double ss_res = 0.0, ss_tot = 0.0;
  auto p = prediction.data();
  auto t = truth.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double res = static_cast<double>(t[i]) - p[i];
    const double dev = static_cast<double>(t[i]) - mean;
    ss_res += res * res;
    ss_tot += dev * dev;
  }
  ORBIT2_REQUIRE(ss_tot > 0.0, "r2 undefined for constant truth");
  return 1.0 - ss_res / ss_tot;
}

double rmse(const Tensor& prediction, const Tensor& truth) {
  check_same_shape(prediction, truth, "rmse");
  ORBIT2_REQUIRE(truth.numel() > 0, "rmse of empty tensors");
  double acc = 0.0;
  auto p = prediction.data();
  auto t = truth.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double d = static_cast<double>(p[i]) - t[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(p.size()));
}

double quantile(const Tensor& values, double fraction) {
  ORBIT2_REQUIRE(values.numel() > 0, "quantile of empty tensor");
  ORBIT2_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
                 "quantile fraction " << fraction << " outside [0,1]");
  std::vector<float> sorted(values.data().begin(), values.data().end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = fraction * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double rmse_above_quantile(const Tensor& prediction, const Tensor& truth,
                           double fraction) {
  check_same_shape(prediction, truth, "rmse_above_quantile");
  const double threshold = quantile(truth, fraction);
  double acc = 0.0;
  std::int64_t count = 0;
  auto p = prediction.data();
  auto t = truth.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (t[i] < threshold) continue;
    const double d = static_cast<double>(p[i]) - t[i];
    acc += d * d;
    ++count;
  }
  ORBIT2_CHECK(count > 0, "no pixels above quantile " << fraction);
  return std::sqrt(acc / static_cast<double>(count));
}

double psnr(const Tensor& prediction, const Tensor& truth) {
  const double range = static_cast<double>(truth.max()) - truth.min();
  ORBIT2_REQUIRE(range > 0.0, "psnr undefined for constant truth");
  const double err = rmse(prediction, truth);
  if (err == 0.0) return 200.0;  // identical fields: conventionally capped
  return 20.0 * std::log10(range / err);
}

double ssim(const Tensor& prediction, const Tensor& truth,
            const SsimParams& params) {
  check_same_shape(prediction, truth, "ssim");
  ORBIT2_REQUIRE(prediction.rank() == 2, "ssim expects [H,W]");
  ORBIT2_REQUIRE(params.window >= 2, "ssim window must be >= 2");
  const std::int64_t h = truth.dim(0), w = truth.dim(1);
  ORBIT2_REQUIRE(h >= params.window && w >= params.window,
                 "field smaller than ssim window");

  const double range = static_cast<double>(truth.max()) - truth.min();
  const double c1 = (params.k1 * range) * (params.k1 * range);
  const double c2 = (params.k2 * range) * (params.k2 * range);

  const float* p = prediction.data().data();
  const float* t = truth.data().data();

  double total = 0.0;
  std::int64_t windows = 0;
  for (std::int64_t y0 = 0; y0 + params.window <= h; y0 += params.window) {
    for (std::int64_t x0 = 0; x0 + params.window <= w; x0 += params.window) {
      double mean_p = 0.0, mean_t = 0.0;
      const double n = static_cast<double>(params.window * params.window);
      for (std::int64_t y = y0; y < y0 + params.window; ++y) {
        for (std::int64_t x = x0; x < x0 + params.window; ++x) {
          mean_p += p[y * w + x];
          mean_t += t[y * w + x];
        }
      }
      mean_p /= n;
      mean_t /= n;
      double var_p = 0.0, var_t = 0.0, cov = 0.0;
      for (std::int64_t y = y0; y < y0 + params.window; ++y) {
        for (std::int64_t x = x0; x < x0 + params.window; ++x) {
          const double dp = p[y * w + x] - mean_p;
          const double dt = t[y * w + x] - mean_t;
          var_p += dp * dp;
          var_t += dt * dt;
          cov += dp * dt;
        }
      }
      var_p /= n - 1;
      var_t /= n - 1;
      cov /= n - 1;
      const double numerator = (2 * mean_p * mean_t + c1) * (2 * cov + c2);
      const double denominator =
          (mean_p * mean_p + mean_t * mean_t + c1) * (var_p + var_t + c2);
      total += numerator / denominator;
      ++windows;
    }
  }
  return total / static_cast<double>(windows);
}

Tensor log1p_transform(const Tensor& precip) {
  return precip.map([](float x) { return std::log1p(std::max(0.0f, x)); });
}

double high_frequency_spectral_error(const Tensor& prediction,
                                     const Tensor& truth) {
  check_same_shape(prediction, truth, "high_frequency_spectral_error");
  const auto spec_p = radial_power_spectrum(prediction);
  const auto spec_t = radial_power_spectrum(truth);
  const std::size_t k_min = spec_t.size() / 2;
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t k = k_min; k < spec_t.size(); ++k) {
    if (spec_t[k] <= 0.0 || spec_p[k] <= 0.0) continue;
    acc += std::fabs(std::log10(spec_p[k] / spec_t[k]));
    ++count;
  }
  ORBIT2_CHECK(count > 0, "no usable high-frequency bins");
  return acc / static_cast<double>(count);
}

double weighted_rmse(const Tensor& prediction, const Tensor& truth,
                     const Tensor& row_weights) {
  check_same_shape(prediction, truth, "weighted_rmse");
  ORBIT2_REQUIRE(prediction.rank() == 2, "weighted_rmse expects [H,W]");
  ORBIT2_REQUIRE(row_weights.rank() == 1 &&
                     row_weights.dim(0) == prediction.dim(0),
                 "row weights must match field height");
  const std::int64_t h = truth.dim(0), w = truth.dim(1);
  const float* p = prediction.data().data();
  const float* t = truth.data().data();
  const float* wts = row_weights.data().data();
  double acc = 0.0, weight_total = 0.0;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const double d = static_cast<double>(p[y * w + x]) - t[y * w + x];
      acc += wts[y] * d * d;
      weight_total += wts[y];
    }
  }
  return std::sqrt(acc / weight_total);
}

EvaluationReport evaluate_field(const Tensor& prediction, const Tensor& truth) {
  EvaluationReport report;
  report.r2 = r2_score(prediction, truth);
  report.rmse = rmse(prediction, truth);
  report.rmse_sigma1 = rmse_above_quantile(prediction, truth, 0.68);
  report.rmse_sigma2 = rmse_above_quantile(prediction, truth, 0.95);
  report.rmse_sigma3 = rmse_above_quantile(prediction, truth, 0.997);
  if (prediction.rank() == 2) {
    report.ssim = ssim(prediction, truth);
  }
  report.psnr = psnr(prediction, truth);
  return report;
}

}  // namespace orbit2::metrics
