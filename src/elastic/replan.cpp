#include "elastic/replan.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/obs.hpp"

namespace orbit2::elastic {

namespace {

/// PFS wall time of one reshard pass: read every byte of the old layout,
/// write every byte of the new one (layout metadata is noise).
double reshard_io_seconds(std::int64_t parameters,
                          const hwsim::RecoveryCostConfig& recovery) {
  return hwsim::checkpoint_read_seconds(parameters, recovery) +
         hwsim::checkpoint_write_seconds(parameters, recovery);
}

}  // namespace

ReplanResult replan_for_survivors(const hwsim::WorkloadSpec& spec,
                                  const hwsim::FrontierTopology& topo,
                                  std::int64_t survivors,
                                  bool favor_sequence) {
  ORBIT2_REQUIRE(survivors >= 1,
                 "need at least one survivor, got " << survivors);
  ReplanResult result;
  result.survivors = survivors;
  result.plan = hwsim::plan_parallelism(spec.config, survivors, spec.tiles,
                                        favor_sequence);
  result.fit = hwsim::check_fits(spec, result.plan, topo);
  result.feasible = result.fit.fits;
  return result;
}

double replan_pause_seconds(std::int64_t parameters,
                            const hwsim::RecoveryCostConfig& recovery,
                            const ElasticCostConfig& elastic) {
  // Shrink now and grow back at repair time: two plan transitions, each a
  // fixed re-init plus a reshard pass; state is reloaded once (shrink).
  return recovery.detect_seconds +
         2.0 * (elastic.replan_fixed_seconds +
                reshard_io_seconds(parameters, recovery)) +
         hwsim::checkpoint_read_seconds(parameters, recovery);
}

double wait_pause_seconds(std::int64_t parameters,
                          const hwsim::RecoveryCostConfig& recovery,
                          const ElasticCostConfig& elastic) {
  return recovery.detect_seconds + elastic.repair_seconds +
         recovery.restart_seconds +
         hwsim::checkpoint_read_seconds(parameters, recovery);
}

double expected_goodput_replan(double interval_seconds,
                               double checkpoint_seconds, double failure_rate,
                               std::int64_t parameters,
                               std::int64_t survivors,
                               std::int64_t total_workers,
                               const hwsim::RecoveryCostConfig& recovery,
                               const ElasticCostConfig& elastic) {
  ORBIT2_REQUIRE(survivors >= 1 && survivors <= total_workers,
                 "survivors " << survivors << " out of range [1, "
                              << total_workers << "]");
  // The degraded window forgoes repair * (1 - S/N) useful seconds versus a
  // full-strength job; fold that deficit into the per-failure recovery term
  // of the standard Young/Daly goodput form.
  const double survivor_fraction = static_cast<double>(survivors) /
                                   static_cast<double>(total_workers);
  const double deficit =
      elastic.repair_seconds * (1.0 - survivor_fraction);
  const double pause = replan_pause_seconds(parameters, recovery, elastic);
  return hwsim::expected_goodput(interval_seconds, checkpoint_seconds,
                                 failure_rate, pause + deficit);
}

double expected_goodput_wait(double interval_seconds,
                             double checkpoint_seconds, double failure_rate,
                             std::int64_t parameters,
                             const hwsim::RecoveryCostConfig& recovery,
                             const ElasticCostConfig& elastic) {
  const double pause = wait_pause_seconds(parameters, recovery, elastic);
  return hwsim::expected_goodput(interval_seconds, checkpoint_seconds,
                                 failure_rate, pause);
}

RecoveryPolicy::RecoveryPolicy(RecoveryPolicyConfig config)
    : config_(config) {
  ORBIT2_REQUIRE(config_.elastic.replan_fixed_seconds >= 0.0 &&
                     config_.elastic.repair_seconds >= 0.0,
                 "elastic costs must be non-negative");
  ORBIT2_REQUIRE(config_.min_relative_advantage >= 0.0,
                 "advantage margin must be non-negative, got "
                     << config_.min_relative_advantage);
}

RecoveryDecision RecoveryPolicy::decide(const hwsim::WorkloadSpec& spec,
                                        const hwsim::FrontierTopology& topo,
                                        const hwsim::FaultModel& faults,
                                        std::int64_t survivors,
                                        double interval_seconds) const {
  ORBIT2_OBS_SPAN("elastic/replan", "elastic");
  const std::int64_t total_workers = faults.gcds();
  ORBIT2_REQUIRE(survivors >= 1 && survivors <= total_workers,
                 "survivors " << survivors << " out of range [1, "
                              << total_workers << "]");
  const std::int64_t parameters =
      hwsim::total_parameter_count(spec.config);
  const double checkpoint_seconds =
      hwsim::checkpoint_write_seconds(parameters, config_.recovery);
  const double failure_rate = faults.failure_rate();

  RecoveryDecision decision;
  decision.replan = replan_for_survivors(spec, topo, survivors,
                                         config_.favor_sequence);
  decision.goodput_wait =
      expected_goodput_wait(interval_seconds, checkpoint_seconds,
                            failure_rate, parameters, config_.recovery,
                            config_.elastic);
  if (decision.replan.feasible) {
    decision.goodput_replan = expected_goodput_replan(
        interval_seconds, checkpoint_seconds, failure_rate, parameters,
        survivors, total_workers, config_.recovery, config_.elastic);
  }
  const bool replan_wins =
      decision.replan.feasible &&
      decision.goodput_replan >
          decision.goodput_wait * (1.0 + config_.min_relative_advantage);
  decision.action = replan_wins ? RecoveryAction::kReplanContinue
                                : RecoveryAction::kWaitForRepair;
  ORBIT2_OBS_COUNT("elastic.replan_decisions", 1);
  if (replan_wins) ORBIT2_OBS_COUNT("elastic.replans_chosen", 1);
  return decision;
}

ElasticSimulatedRun simulate_elastic_run(
    hwsim::FaultModel& faults, const hwsim::RecoveryCostConfig& recovery,
    const ElasticCostConfig& elastic, std::int64_t parameters,
    std::int64_t survivors, std::int64_t total_workers,
    double interval_seconds, double useful_target_seconds,
    RecoveryAction action) {
  ORBIT2_REQUIRE(interval_seconds > 0.0,
                 "checkpoint interval must be positive, got "
                     << interval_seconds);
  ORBIT2_REQUIRE(useful_target_seconds >= 0.0,
                 "useful target must be non-negative, got "
                     << useful_target_seconds);
  ORBIT2_REQUIRE(survivors >= 1 && survivors <= total_workers,
                 "survivors " << survivors << " out of range [1, "
                              << total_workers << "]");
  const double slowdown = faults.step_slowdown();
  const double write_cost =
      hwsim::checkpoint_write_seconds(parameters, recovery);
  const double reload_cost =
      hwsim::checkpoint_read_seconds(parameters, recovery);
  // Each plan transition (shrink or grow) pays fixed re-init + one reshard.
  const double transition_cost =
      elastic.replan_fixed_seconds + reshard_io_seconds(parameters, recovery);
  const double wait_cost =
      wait_pause_seconds(parameters, recovery, elastic);
  const double degrade_mult = static_cast<double>(total_workers) /
                              static_cast<double>(survivors);

  ElasticSimulatedRun run;
  double ttf = faults.sample_time_to_failure();
  double useful = 0.0;
  // Wall seconds left in the degraded (shrunken) window; > 0 only on the
  // re-plan path. The failure clock ticks only while work/checkpoints run,
  // matching hwsim::simulate_run's convention.
  double degraded_left = 0.0;
  bool degraded = false;
  while (useful < useful_target_seconds) {
    if (degraded && degraded_left <= 0.0) {
      // Repair arrived: grow back to full strength.
      run.wall_seconds += transition_cost;
      ++run.replans;
      degraded = false;
    }
    const double segment_useful =
        std::min(interval_seconds, useful_target_seconds - useful);
    const double rate_mult = slowdown * (degraded ? degrade_mult : 1.0);
    const double segment_wall = segment_useful * rate_mult + write_cost;
    if (ttf >= segment_wall) {
      run.wall_seconds += segment_wall;
      ttf -= segment_wall;
      useful += segment_useful;
      ++run.checkpoints_written;
      if (degraded) {
        run.degraded_seconds += segment_wall;
        degraded_left -= segment_wall;
      }
    } else {
      // Failure mid-segment: work since the last checkpoint is lost.
      run.wall_seconds += ttf;
      run.lost_work_seconds += std::min(ttf, segment_useful * rate_mult);
      if (degraded) run.degraded_seconds += ttf;
      ++run.failures;
      if (action == RecoveryAction::kWaitForRepair) {
        run.wall_seconds += wait_cost;
      } else {
        // Shrink to the survivors and keep going; a failure inside an open
        // degraded window restarts the repair clock (per-incident repair).
        run.wall_seconds += recovery.detect_seconds + transition_cost +
                            reload_cost;
        ++run.replans;
        degraded = true;
        degraded_left = elastic.repair_seconds;
      }
      ttf = faults.sample_time_to_failure();
    }
  }
  run.useful_seconds = useful;
  return run;
}

}  // namespace orbit2::elastic
