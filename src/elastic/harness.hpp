#pragma once
// Deterministic fault-injection harness: drives kill -> re-plan -> reshard
// -> resume cycles end-to-end against the real trainers.
//
// "Workers" are simulated by the kernel layer's thread cap
// (ORBIT2_NUM_THREADS / kernels::set_max_threads): a phase running under N
// threads stands in for N workers, and because every kernel is bit-
// identical across thread counts, the only state that actually has to
// survive a shrink/grow is the checkpoint — which reshard.hpp moves
// between layouts byte-exactly. The kill itself is a KillSignal thrown
// from the optimizer-step hook, which fires *after* any due checkpoint
// write, so the state left on disk is exactly what a SIGKILL at that
// boundary would leave.

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "train/trainer.hpp"

namespace orbit2::elastic {

/// Thrown by KillSwitch at the scheduled optimizer step (SIGKILL stand-in).
struct KillSignal {
  std::int64_t step = 0;
};

/// Deterministic kill schedule over optimizer steps: records the loss
/// stream per step and throws KillSignal when `kill_at_step` is reached.
/// A negative step never fires (pure recorder). Must outlive the returned
/// hook.
class KillSwitch {
 public:
  explicit KillSwitch(std::int64_t kill_at_step)
      : kill_at_step_(kill_at_step) {}

  /// StepHook adapter for Trainer/TilesTrainer::set_step_hook.
  train::StepHook hook();

  bool fired() const { return fired_; }
  const std::map<std::int64_t, double>& losses() const { return losses_; }

 private:
  std::int64_t kill_at_step_;
  bool fired_ = false;
  std::map<std::int64_t, double> losses_;
};

/// Moves a full checkpoint through shard layouts on disk: load `full_in`,
/// split into `from_workers` shard files at `work_prefix`, reshard the
/// re-read shard files to `to_workers`, write those, then merge the
/// re-read target shards into a full checkpoint at `full_out`. Every hop
/// round-trips real files, so the resumed trainer only ever sees bytes
/// that crossed the sharded layout.
void reshard_through_layouts(const std::string& full_in,
                             const std::string& work_prefix,
                             std::int64_t from_workers,
                             std::int64_t to_workers,
                             const std::string& full_out);

struct ElasticScenario {
  /// Optimizer step at which the training phase is killed.
  std::int64_t kill_at_step = 0;
  /// Simulated worker counts before and after the fault.
  std::int64_t from_workers = 0;
  std::int64_t to_workers = 0;
  /// Full checkpoint the killed phase leaves behind (e.g. latest.o2ck).
  std::string checkpoint_path;
  /// Prefix for intermediate shard files.
  std::string work_prefix;
  /// Merged full checkpoint the resume phase loads.
  std::string resume_path;
};

struct ElasticOutcome {
  bool killed = false;
  std::int64_t killed_at_step = 0;
  /// Combined per-step batch-loss stream: pre-kill steps from the killed
  /// phase, later steps from the resumed phase (resume wins on overlap).
  std::map<std::int64_t, double> losses;
};

/// Runs the full cycle: pins `from_workers` kernel threads and calls
/// `train_phase` with a kill hook (KillSignal expected at kill_at_step),
/// reshards checkpoint_path through the from->to layouts into resume_path,
/// pins `to_workers` threads, and calls `resume_phase(resume_path, hook)`
/// with a recording hook. Thread caps are only changed between phases
/// (the set_max_threads contract). The thread cap is left at `to_workers`
/// on return.
ElasticOutcome run_kill_reshard_resume(
    const ElasticScenario& scenario,
    const std::function<void(train::StepHook)>& train_phase,
    const std::function<void(const std::string&, train::StepHook)>&
        resume_phase);

}  // namespace orbit2::elastic
