#pragma once
// Checkpoint resharding: move full training state between shard layouts.
//
// A checkpoint written on N workers must be consumable by M != N survivors
// for elastic recovery to work. This module operates on the raw (model-
// free) checkpoint form: every tensor entry — parameters and both AdamW
// moment buffers — is split along dim 0 by the canonical
// hwsim::shard_rows ownership map, and the scalar TrainState (global step,
// epoch/sample cursor, GradScaler, data-order RNG stream) is replicated
// into every shard, so any single shard set fully determines the resume
// point. Each shard file is itself a valid v2 checkpoint container.
//
// Guarantees (tested):
//  * merge(shard(full, N)) is byte-identical to `full` for every N — the
//    split is pure slicing, the merge pure concatenation, and the v2
//    writer serializes a given (name -> payload) mapping to one byte
//    stream.
//  * reshard from N to M equals sharding the full state to M directly, so
//    a resume at the M-layout is bit-identical to a fresh M-layout run
//    (the kernel layer makes the math thread-count-invariant; this makes
//    the state layout-invariant).

#include <cstdint>
#include <string>
#include <vector>

#include "train/checkpoint.hpp"

namespace orbit2::elastic {

/// Splits a full (unsharded) raw checkpoint into `shards` per-worker
/// checkpoints. Tensor entries must be rank >= 1; each shard takes its
/// shard_rows dim-0 range (possibly zero rows when a tensor has fewer rows
/// than shards). TrainState is replicated into every shard.
std::vector<train::RawCheckpoint> shard_checkpoint(
    const train::RawCheckpoint& full, std::int64_t shards);

/// Inverse of shard_checkpoint: concatenates each entry's per-shard slices
/// back into the full tensor. Requires every shard to carry the same entry
/// names in the same order and identical TrainState bytes-relevant fields.
train::RawCheckpoint merge_checkpoint(
    const std::vector<train::RawCheckpoint>& shards);

/// N -> M in one call: merge then re-split. Equivalent (and tested equal)
/// to shard_checkpoint(merge_checkpoint(from), to_shards).
std::vector<train::RawCheckpoint> reshard_checkpoint(
    const std::vector<train::RawCheckpoint>& from, std::int64_t to_shards);

/// Canonical on-disk name of shard `shard` of `shards`:
/// "<prefix>.shard<k>-of-<n>.o2ck".
std::string shard_path(const std::string& prefix, std::int64_t shard,
                       std::int64_t shards);

/// Writes each shard to its shard_path (atomic + retried per file).
void save_sharded(const std::string& prefix,
                  const std::vector<train::RawCheckpoint>& shards);

/// Reads `shards` shard files written by save_sharded.
std::vector<train::RawCheckpoint> load_sharded(const std::string& prefix,
                                               std::int64_t shards);

}  // namespace orbit2::elastic
