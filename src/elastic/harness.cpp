#include "elastic/harness.hpp"

#include "core/error.hpp"
#include "core/kernels.hpp"
#include "core/obs.hpp"
#include "elastic/reshard.hpp"

namespace orbit2::elastic {

train::StepHook KillSwitch::hook() {
  return [this](std::int64_t global_step, double batch_loss) {
    losses_[global_step] = batch_loss;
    if (kill_at_step_ >= 0 && global_step >= kill_at_step_ && !fired_) {
      fired_ = true;
      ORBIT2_OBS_COUNT("elastic.kills", 1);
      throw KillSignal{global_step};
    }
  };
}

void reshard_through_layouts(const std::string& full_in,
                             const std::string& work_prefix,
                             std::int64_t from_workers,
                             std::int64_t to_workers,
                             const std::string& full_out) {
  ORBIT2_REQUIRE(from_workers >= 1 && to_workers >= 1,
                 "worker counts must be >= 1, got " << from_workers << " -> "
                                                    << to_workers);
  const train::RawCheckpoint full = train::load_checkpoint_raw(full_in);
  save_sharded(work_prefix, shard_checkpoint(full, from_workers));
  // Re-read the source layout from disk, reshard, and persist the target
  // layout — the span around this hop is the recovery cost traces show.
  const std::vector<train::RawCheckpoint> resharded = reshard_checkpoint(
      load_sharded(work_prefix, from_workers), to_workers);
  save_sharded(work_prefix, resharded);
  train::save_checkpoint_raw(
      full_out, merge_checkpoint(load_sharded(work_prefix, to_workers)));
}

ElasticOutcome run_kill_reshard_resume(
    const ElasticScenario& scenario,
    const std::function<void(train::StepHook)>& train_phase,
    const std::function<void(const std::string&, train::StepHook)>&
        resume_phase) {
  ORBIT2_REQUIRE(scenario.kill_at_step >= 0,
                 "kill step must be non-negative, got "
                     << scenario.kill_at_step);
  ElasticOutcome outcome;

  kernels::set_max_threads(static_cast<int>(scenario.from_workers));
  KillSwitch kill_switch(scenario.kill_at_step);
  bool killed = false;
  try {
    train_phase(kill_switch.hook());
  } catch (const KillSignal& signal) {
    killed = true;
    outcome.killed = true;
    outcome.killed_at_step = signal.step;
  }
  ORBIT2_REQUIRE(killed, "training phase finished before the scheduled kill "
                         "at step " << scenario.kill_at_step);

  reshard_through_layouts(scenario.checkpoint_path, scenario.work_prefix,
                          scenario.from_workers, scenario.to_workers,
                          scenario.resume_path);

  kernels::set_max_threads(static_cast<int>(scenario.to_workers));
  KillSwitch recorder(-1);
  resume_phase(scenario.resume_path, recorder.hook());

  outcome.losses = kill_switch.losses();
  for (const auto& [step, loss] : recorder.losses()) {
    outcome.losses[step] = loss;
  }
  return outcome;
}

}  // namespace orbit2::elastic
