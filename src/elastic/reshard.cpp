#include "elastic/reshard.hpp"

#include <algorithm>
#include <cstddef>

#include "core/error.hpp"
#include "core/obs.hpp"
#include "hwsim/sharded.hpp"

namespace orbit2::elastic {

namespace {

/// Same shape with dim 0 replaced (rank preserved).
Shape with_dim0(const Shape& shape, std::int64_t dim0) {
  switch (shape.rank()) {
    case 1: return Shape{dim0};
    case 2: return Shape{dim0, shape[1]};
    case 3: return Shape{dim0, shape[1], shape[2]};
    default: return Shape{dim0, shape[1], shape[2], shape[3]};
  }
}

/// Elements per dim-0 row (0 for zero-row tensors).
std::int64_t row_elements(const Shape& shape) {
  std::int64_t elems = 1;
  for (int axis = 1; axis < shape.rank(); ++axis) elems *= shape[axis];
  return elems;
}

bool same_resume_point(const train::TrainState& a,
                       const train::TrainState& b) {
  bool same = a.global_step == b.global_step && a.epoch == b.epoch &&
              a.sample_cursor == b.sample_cursor &&
              a.optimizer_steps == b.optimizer_steps &&
              a.scaler_scale == b.scaler_scale &&
              a.scaler_good_steps == b.scaler_good_steps &&
              a.scaler_skipped == b.scaler_skipped &&
              a.has_rng == b.has_rng && a.metric == b.metric &&
              a.data_rng.cached_normal_bits == b.data_rng.cached_normal_bits &&
              a.data_rng.has_cached_normal == b.data_rng.has_cached_normal;
  for (std::size_t w = 0; w < a.data_rng.words.size(); ++w) {
    same = same && a.data_rng.words[w] == b.data_rng.words[w];
  }
  return same;
}

}  // namespace

std::vector<train::RawCheckpoint> shard_checkpoint(
    const train::RawCheckpoint& full, std::int64_t shards) {
  ORBIT2_REQUIRE(shards >= 1, "need at least one shard, got " << shards);
  std::vector<train::RawCheckpoint> out(static_cast<std::size_t>(shards));
  for (auto& shard : out) {
    shard.has_train_state = full.has_train_state;
    shard.state = full.state;
    shard.tensors.reserve(full.tensors.size());
  }
  for (const train::RawTensorEntry& entry : full.tensors) {
    ORBIT2_REQUIRE(entry.shape.rank() >= 1,
                   "cannot shard rank-0 entry '" << entry.name << "'");
    const std::int64_t rows = entry.shape[0];
    const std::int64_t per_row = row_elements(entry.shape);
    for (std::int64_t s = 0; s < shards; ++s) {
      const hwsim::RowRange range = hwsim::shard_rows(rows, s, shards);
      train::RawTensorEntry slice;
      slice.name = entry.name;
      slice.shape = with_dim0(entry.shape, range.rows());
      const auto begin =
          entry.payload.begin() +
          static_cast<std::ptrdiff_t>(range.begin * per_row);
      slice.payload.assign(
          begin, begin + static_cast<std::ptrdiff_t>(range.rows() * per_row));
      out[static_cast<std::size_t>(s)].tensors.push_back(std::move(slice));
    }
  }
  return out;
}

train::RawCheckpoint merge_checkpoint(
    const std::vector<train::RawCheckpoint>& shards) {
  ORBIT2_REQUIRE(!shards.empty(), "cannot merge zero shards");
  const std::int64_t n = static_cast<std::int64_t>(shards.size());
  const train::RawCheckpoint& first = shards.front();
  for (const train::RawCheckpoint& shard : shards) {
    ORBIT2_REQUIRE(shard.tensors.size() == first.tensors.size(),
                   "shard entry counts differ: " << shard.tensors.size()
                                                 << " vs "
                                                 << first.tensors.size());
    ORBIT2_REQUIRE(shard.has_train_state == first.has_train_state &&
                       (!shard.has_train_state ||
                        same_resume_point(shard.state, first.state)),
                   "shards disagree on the resume point");
  }

  train::RawCheckpoint full;
  full.has_train_state = first.has_train_state;
  full.state = first.state;
  full.tensors.reserve(first.tensors.size());
  for (std::size_t e = 0; e < first.tensors.size(); ++e) {
    std::int64_t rows = 0;
    for (const train::RawCheckpoint& shard : shards) {
      const train::RawTensorEntry& part = shard.tensors[e];
      ORBIT2_REQUIRE(part.name == first.tensors[e].name,
                     "shard entry order mismatch: '"
                         << part.name << "' vs '" << first.tensors[e].name
                         << "'");
      ORBIT2_REQUIRE(part.shape.rank() == first.tensors[e].shape.rank(),
                     "rank mismatch for '" << part.name << "'");
      for (int axis = 1; axis < part.shape.rank(); ++axis) {
        ORBIT2_REQUIRE(part.shape[axis] == first.tensors[e].shape[axis],
                       "non-row dimension mismatch for '" << part.name
                                                          << "'");
      }
      rows += part.shape[0];
    }
    // Every shard must hold exactly its canonical shard_rows range — this
    // catches shards fed in the wrong order or from mixed layouts.
    for (std::int64_t s = 0; s < n; ++s) {
      const hwsim::RowRange range = hwsim::shard_rows(rows, s, n);
      ORBIT2_REQUIRE(
          shards[static_cast<std::size_t>(s)].tensors[e].shape[0] ==
              range.rows(),
          "shard " << s << " of " << n << " holds "
                   << shards[static_cast<std::size_t>(s)].tensors[e].shape[0]
                   << " rows of '" << first.tensors[e].name << "', expected "
                   << range.rows());
    }
    train::RawTensorEntry merged;
    merged.name = first.tensors[e].name;
    merged.shape = with_dim0(first.tensors[e].shape, rows);
    merged.payload.reserve(
        static_cast<std::size_t>(rows * row_elements(merged.shape)));
    for (const train::RawCheckpoint& shard : shards) {
      const std::vector<float>& part = shard.tensors[e].payload;
      merged.payload.insert(merged.payload.end(), part.begin(), part.end());
    }
    full.tensors.push_back(std::move(merged));
  }
  return full;
}

std::vector<train::RawCheckpoint> reshard_checkpoint(
    const std::vector<train::RawCheckpoint>& from, std::int64_t to_shards) {
  ORBIT2_OBS_SPAN("elastic/reshard", "elastic");
  auto out = shard_checkpoint(merge_checkpoint(from), to_shards);
  ORBIT2_OBS_COUNT("elastic.reshards", 1);
  return out;
}

std::string shard_path(const std::string& prefix, std::int64_t shard,
                       std::int64_t shards) {
  ORBIT2_REQUIRE(shard >= 0 && shard < shards,
                 "shard " << shard << " out of range [0, " << shards << ")");
  return prefix + ".shard" + std::to_string(shard) + "-of-" +
         std::to_string(shards) + ".o2ck";
}

void save_sharded(const std::string& prefix,
                  const std::vector<train::RawCheckpoint>& shards) {
  const std::int64_t n = static_cast<std::int64_t>(shards.size());
  for (std::int64_t s = 0; s < n; ++s) {
    train::save_checkpoint_raw(shard_path(prefix, s, n),
                               shards[static_cast<std::size_t>(s)]);
  }
}

std::vector<train::RawCheckpoint> load_sharded(const std::string& prefix,
                                               std::int64_t shards) {
  ORBIT2_REQUIRE(shards >= 1, "need at least one shard, got " << shards);
  std::vector<train::RawCheckpoint> out;
  out.reserve(static_cast<std::size_t>(shards));
  for (std::int64_t s = 0; s < shards; ++s) {
    out.push_back(train::load_checkpoint_raw(shard_path(prefix, s, shards)));
  }
  return out;
}

}  // namespace orbit2::elastic
