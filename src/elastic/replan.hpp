#pragma once
// Elastic re-planning: what to do when a fault shrinks the job.
//
// ORBIT-2-scale runs lose nodes mid-flight (hwsim::FaultModel); the passive
// answer — wait for the scheduler to hand back a repaired allocation and
// restore at the old layout — burns the whole repair window. The elastic
// answer re-plans: call plan_parallelism for the survivors, gate it with
// check_fits, reshard the checkpoint (reshard.hpp), and keep training at a
// degraded rate until the fleet is whole again. Neither choice dominates:
// re-planning pays two reshard passes (shrink now, grow back later) plus
// plan/process-group re-initialization, while waiting pays the full repair
// time. This header extends the Young/Daly goodput model with those costs
// so a RecoveryPolicy can pick per failure, and provides a discrete-event
// simulation driven by the same seeded failure stream to cross-check the
// analytic tradeoff (exported by bench_fault_tolerance).

#include <cstdint>

#include "hwsim/fault.hpp"
#include "hwsim/hardware.hpp"
#include "hwsim/parallelism.hpp"
#include "hwsim/workload.hpp"

namespace orbit2::elastic {

/// Costs specific to the elastic path, on top of hwsim::RecoveryCostConfig.
struct ElasticCostConfig {
  /// Fixed re-plan overhead per transition: plan computation, process-group
  /// and collective re-initialization on the new layout.
  double replan_fixed_seconds = 60.0;
  /// Mean wall time until failed hardware rejoins (scheduler + repair).
  double repair_seconds = 3600.0;
};

/// Outcome of planning for the survivors of a failure.
struct ReplanResult {
  /// True when the survivor plan passes check_fits under the topology.
  bool feasible = false;
  std::int64_t survivors = 0;
  hwsim::ParallelismPlan plan;  // valid when feasible
  hwsim::FitResult fit;
};

/// Plans parallelism for `survivors` workers and gates it on memory
/// feasibility. Infeasible plans (survivors too few to hold the model)
/// force the policy to wait for repair.
ReplanResult replan_for_survivors(const hwsim::WorkloadSpec& spec,
                                  const hwsim::FrontierTopology& topo,
                                  std::int64_t survivors,
                                  bool favor_sequence = false);

/// Wall-clock pause of one re-plan-and-continue recovery: detect the
/// failure, then twice (shrink now, grow back when repaired) pay the fixed
/// re-plan cost plus a reshard pass (read the old layout + write the new
/// one through the PFS), then reload state on the survivors.
double replan_pause_seconds(std::int64_t parameters,
                            const hwsim::RecoveryCostConfig& recovery,
                            const ElasticCostConfig& elastic);

/// Wall-clock pause of one wait-for-repair recovery: detect, sit out the
/// repair, relaunch, reload.
double wait_pause_seconds(std::int64_t parameters,
                          const hwsim::RecoveryCostConfig& recovery,
                          const ElasticCostConfig& elastic);

/// Extended Young/Daly goodput of the re-plan strategy: each failure costs
/// the re-plan pause plus the work-rate deficit of running on `survivors`
/// of `total_workers` for the repair window (repair * (1 - S/N) useful
/// seconds forgone), folded into the standard goodput form as an effective
/// per-failure recovery cost.
double expected_goodput_replan(double interval_seconds,
                               double checkpoint_seconds, double failure_rate,
                               std::int64_t parameters,
                               std::int64_t survivors,
                               std::int64_t total_workers,
                               const hwsim::RecoveryCostConfig& recovery,
                               const ElasticCostConfig& elastic);

/// Extended Young/Daly goodput of the wait-for-repair strategy: each
/// failure costs the wait pause (repair dominates) as its recovery term.
double expected_goodput_wait(double interval_seconds,
                             double checkpoint_seconds, double failure_rate,
                             std::int64_t parameters,
                             const hwsim::RecoveryCostConfig& recovery,
                             const ElasticCostConfig& elastic);

enum class RecoveryAction {
  kReplanContinue,  // shrink to the survivors and keep training
  kWaitForRepair,   // hold the old layout until the fleet is whole
};

/// One policy decision with both analytic goodputs attached (so callers and
/// benches can plot the tradeoff the decision came from).
struct RecoveryDecision {
  RecoveryAction action = RecoveryAction::kWaitForRepair;
  double goodput_replan = 0.0;  // 0 when re-planning is infeasible
  double goodput_wait = 0.0;
  ReplanResult replan;
};

struct RecoveryPolicyConfig {
  ElasticCostConfig elastic;
  hwsim::RecoveryCostConfig recovery;
  /// Re-plan only when its goodput beats waiting by at least this relative
  /// margin (hysteresis against flapping on near-ties).
  double min_relative_advantage = 0.0;
  bool favor_sequence = false;
};

/// Chooses re-plan-and-continue vs wait-for-repair per failure event, from
/// the extended Young/Daly model gated by check_fits feasibility.
class RecoveryPolicy {
 public:
  explicit RecoveryPolicy(RecoveryPolicyConfig config);

  const RecoveryPolicyConfig& config() const { return config_; }

  /// Decides for a failure leaving `survivors` of the plan's worker count.
  /// `interval_seconds` is the checkpoint interval in force (tau);
  /// parameters and failure rate come from the workload and fault model.
  RecoveryDecision decide(const hwsim::WorkloadSpec& spec,
                          const hwsim::FrontierTopology& topo,
                          const hwsim::FaultModel& faults,
                          std::int64_t survivors,
                          double interval_seconds) const;

 private:
  RecoveryPolicyConfig config_;
};

/// Outcome of a simulated elastic run (discrete-event, seeded by the
/// FaultModel — same stream contract as hwsim::simulate_run).
struct ElasticSimulatedRun {
  double wall_seconds = 0.0;
  double useful_seconds = 0.0;
  std::int64_t failures = 0;
  std::int64_t checkpoints_written = 0;
  std::int64_t replans = 0;  // shrink + grow transitions taken
  double lost_work_seconds = 0.0;
  double degraded_seconds = 0.0;  // wall time spent below full strength

  double goodput() const {
    return wall_seconds > 0.0 ? useful_seconds / wall_seconds : 0.0;
  }
};

/// Simulates a run needing `useful_target_seconds` of training under
/// `action`. Wait-for-repair: every failure pays the wait pause and replays
/// work since the last checkpoint. Re-plan-and-continue: every failure pays
/// the shrink half of the re-plan pause, runs at survivors/total work rate
/// for the remaining repair window, then pays the grow half and returns to
/// full strength (a failure inside the window restarts it — the repair
/// clock is per-incident). Deterministic for a given FaultModel stream
/// state; drive both actions from faults.restart() to compare strategies
/// under one failure history.
ElasticSimulatedRun simulate_elastic_run(
    hwsim::FaultModel& faults, const hwsim::RecoveryCostConfig& recovery,
    const ElasticCostConfig& elastic, std::int64_t parameters,
    std::int64_t survivors, std::int64_t total_workers,
    double interval_seconds, double useful_target_seconds,
    RecoveryAction action);

}  // namespace orbit2::elastic
