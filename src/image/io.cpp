#include "image/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <vector>

namespace orbit2 {

namespace {

void resolve_range(const Tensor& image, float& lo, float& hi) {
  if (lo == hi) {
    lo = image.min();
    hi = image.max();
    if (lo == hi) hi = lo + 1.0f;  // constant image: avoid divide-by-zero
  }
}

std::uint8_t to_byte(float value, float lo, float hi) {
  const float t = std::clamp((value - lo) / (hi - lo), 0.0f, 1.0f);
  return static_cast<std::uint8_t>(t * 255.0f + 0.5f);
}

}  // namespace

void write_pgm(const std::string& path, const Tensor& image, float lo,
               float hi) {
  ORBIT2_REQUIRE(image.rank() == 2, "write_pgm expects [H,W]");
  resolve_range(image, lo, hi);
  const std::int64_t h = image.dim(0), w = image.dim(1);
  std::ofstream out(path, std::ios::binary);
  ORBIT2_REQUIRE(out.good(), "cannot open " << path << " for writing");
  out << "P5\n" << w << " " << h << "\n255\n";
  std::vector<std::uint8_t> row(static_cast<std::size_t>(w));
  const float* src = image.data().data();
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      row[static_cast<std::size_t>(x)] = to_byte(src[y * w + x], lo, hi);
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  ORBIT2_CHECK(out.good(), "short write to " << path);
}

void write_ppm_diverging(const std::string& path, const Tensor& image,
                         float lo, float hi) {
  ORBIT2_REQUIRE(image.rank() == 2, "write_ppm_diverging expects [H,W]");
  resolve_range(image, lo, hi);
  const std::int64_t h = image.dim(0), w = image.dim(1);
  std::ofstream out(path, std::ios::binary);
  ORBIT2_REQUIRE(out.good(), "cannot open " << path << " for writing");
  out << "P6\n" << w << " " << h << "\n255\n";
  std::vector<std::uint8_t> row(static_cast<std::size_t>(3 * w));
  const float* src = image.data().data();
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const float t =
          std::clamp((src[y * w + x] - lo) / (hi - lo), 0.0f, 1.0f);
      // Diverging blue (t=0) -> white (t=0.5) -> red (t=1).
      float r, g, b;
      if (t < 0.5f) {
        const float s = t * 2.0f;
        r = s; g = s; b = 1.0f;
      } else {
        const float s = (t - 0.5f) * 2.0f;
        r = 1.0f; g = 1.0f - s; b = 1.0f - s;
      }
      row[static_cast<std::size_t>(3 * x + 0)] = static_cast<std::uint8_t>(r * 255.0f + 0.5f);
      row[static_cast<std::size_t>(3 * x + 1)] = static_cast<std::uint8_t>(g * 255.0f + 0.5f);
      row[static_cast<std::size_t>(3 * x + 2)] = static_cast<std::uint8_t>(b * 255.0f + 0.5f);
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  ORBIT2_CHECK(out.good(), "short write to " << path);
}

}  // namespace orbit2
