#include "image/filters.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>
#include <vector>

#include "core/kernels.hpp"
#include "core/obs.hpp"

namespace orbit2 {

namespace {

inline std::int64_t clamp_index(std::int64_t i, std::int64_t n) {
  return std::max<std::int64_t>(0, std::min(i, n - 1));
}

std::vector<float> gaussian_kernel(float sigma) {
  ORBIT2_REQUIRE(sigma > 0.0f, "gaussian sigma must be positive");
  const int radius = static_cast<int>(std::ceil(3.0f * sigma));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-(static_cast<double>(i) * i) /
                              (2.0 * sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = static_cast<float>(v);
    sum += v;
  }
  for (float& k : kernel) k = static_cast<float>(k / sum);
  return kernel;
}

}  // namespace

Tensor gaussian_blur(const Tensor& image, float sigma) {
  ORBIT2_REQUIRE(image.rank() == 2, "gaussian_blur expects [H,W]");
  const auto kernel = gaussian_kernel(sigma);
  const int radius = static_cast<int>(kernel.size() / 2);
  const std::int64_t h = image.dim(0), w = image.dim(1);
  ORBIT2_OBS_SPAN_ARG("gaussian_blur", "image", "numel", h * w);

  // Both passes parallelize over output rows: each pixel's double-precision
  // accumulation reads a fixed stencil and writes only its own cell, so the
  // result is bit-identical for any thread count.
  const std::int64_t taps = 2 * static_cast<std::int64_t>(radius) + 1;
  const std::int64_t row_grain = kernels::grain_for(w * taps * 2);

  // Horizontal pass.
  Tensor tmp(image.shape());
  const float* src = image.data().data();
  float* mid = tmp.data().data();
  kernels::parallel_for(h, row_grain, [&](std::int64_t y0, std::int64_t y1) {
    for (std::int64_t y = y0; y < y1; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        double acc = 0.0;
        for (int k = -radius; k <= radius; ++k) {
          acc += static_cast<double>(src[y * w + clamp_index(x + k, w)]) *
                 kernel[static_cast<std::size_t>(k + radius)];
        }
        mid[y * w + x] = static_cast<float>(acc);
      }
    }
  });
  // Vertical pass.
  Tensor out(image.shape());
  float* dst = out.data().data();
  kernels::parallel_for(h, row_grain, [&](std::int64_t y0, std::int64_t y1) {
    for (std::int64_t y = y0; y < y1; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        double acc = 0.0;
        for (int k = -radius; k <= radius; ++k) {
          acc += static_cast<double>(mid[clamp_index(y + k, h) * w + x]) *
                 kernel[static_cast<std::size_t>(k + radius)];
        }
        dst[y * w + x] = static_cast<float>(acc);
      }
    }
  });
  return out;
}

void sobel(const Tensor& image, Tensor& grad_x, Tensor& grad_y) {
  ORBIT2_REQUIRE(image.rank() == 2, "sobel expects [H,W]");
  const std::int64_t h = image.dim(0), w = image.dim(1);
  grad_x = Tensor(image.shape());
  grad_y = Tensor(image.shape());
  const float* src = image.data().data();
  float* gx = grad_x.data().data();
  float* gy = grad_y.data().data();

  auto px = [&](std::int64_t y, std::int64_t x) {
    return src[clamp_index(y, h) * w + clamp_index(x, w)];
  };
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const float tl = px(y - 1, x - 1), tc = px(y - 1, x), tr = px(y - 1, x + 1);
      const float ml = px(y, x - 1), mr = px(y, x + 1);
      const float bl = px(y + 1, x - 1), bc = px(y + 1, x), br = px(y + 1, x + 1);
      gx[y * w + x] = (tr + 2 * mr + br) - (tl + 2 * ml + bl);
      gy[y * w + x] = (bl + 2 * bc + br) - (tl + 2 * tc + tr);
    }
  }
}

Tensor gradient_magnitude(const Tensor& grad_x, const Tensor& grad_y) {
  check_same_shape(grad_x, grad_y, "gradient_magnitude");
  Tensor out(grad_x.shape());
  auto gx = grad_x.data();
  auto gy = grad_y.data();
  auto po = out.data();
  for (std::size_t i = 0; i < po.size(); ++i) {
    po[i] = std::sqrt(gx[i] * gx[i] + gy[i] * gy[i]);
  }
  return out;
}

Tensor canny(const Tensor& image, const CannyParams& params) {
  ORBIT2_REQUIRE(image.rank() == 2, "canny expects [H,W]");
  ORBIT2_REQUIRE(params.low_threshold <= params.high_threshold,
                 "canny: low threshold above high threshold");
  const std::int64_t h = image.dim(0), w = image.dim(1);

  const Tensor smoothed = gaussian_blur(image, params.sigma);
  Tensor gx, gy;
  sobel(smoothed, gx, gy);
  const Tensor mag = gradient_magnitude(gx, gy);

  // Non-maximum suppression along the quantized gradient direction.
  Tensor thin = Tensor::zeros(image.shape());
  const float* pm = mag.data().data();
  const float* pgx = gx.data().data();
  const float* pgy = gy.data().data();
  float* pt = thin.data().data();
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const float m = pm[y * w + x];
      if (m == 0.0f) continue;
      const float angle = std::atan2(pgy[y * w + x], pgx[y * w + x]);
      // Quantize to 0/45/90/135 degrees.
      const float deg = std::fmod(angle * 180.0f / static_cast<float>(M_PI) + 180.0f, 180.0f);
      std::int64_t dy1, dx1;
      if (deg < 22.5f || deg >= 157.5f) { dy1 = 0; dx1 = 1; }
      else if (deg < 67.5f) { dy1 = 1; dx1 = 1; }
      else if (deg < 112.5f) { dy1 = 1; dx1 = 0; }
      else { dy1 = 1; dx1 = -1; }
      const float n1 = pm[clamp_index(y + dy1, h) * w + clamp_index(x + dx1, w)];
      const float n2 = pm[clamp_index(y - dy1, h) * w + clamp_index(x - dx1, w)];
      if (m >= n1 && m >= n2) pt[y * w + x] = m;
    }
  }

  // Double threshold relative to the max suppressed magnitude.
  const float peak = thin.max();
  if (peak <= 0.0f) return Tensor::zeros(image.shape());
  const float low = params.low_threshold * peak;
  const float high = params.high_threshold * peak;

  // Hysteresis: BFS from strong pixels through weak ones.
  Tensor edges = Tensor::zeros(image.shape());
  float* pe = edges.data().data();
  std::deque<std::pair<std::int64_t, std::int64_t>> frontier;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      if (pt[y * w + x] >= high) {
        pe[y * w + x] = 1.0f;
        frontier.emplace_back(y, x);
      }
    }
  }
  while (!frontier.empty()) {
    const auto [y, x] = frontier.front();
    frontier.pop_front();
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        const std::int64_t ny = y + dy, nx = x + dx;
        if (ny < 0 || ny >= h || nx < 0 || nx >= w) continue;
        if (pe[ny * w + nx] != 0.0f) continue;
        if (pt[ny * w + nx] >= low) {
          pe[ny * w + nx] = 1.0f;
          frontier.emplace_back(ny, nx);
        }
      }
    }
  }
  return edges;
}

float edge_density(const Tensor& edges, std::int64_t y0, std::int64_t x0,
                   std::int64_t h, std::int64_t w) {
  ORBIT2_REQUIRE(edges.rank() == 2, "edge_density expects [H,W]");
  ORBIT2_REQUIRE(h > 0 && w > 0, "edge_density: empty window");
  const std::int64_t eh = edges.dim(0), ew = edges.dim(1);
  ORBIT2_REQUIRE(y0 >= 0 && x0 >= 0 && y0 + h <= eh && x0 + w <= ew,
                 "edge_density window out of bounds");
  const float* pe = edges.data().data();
  std::int64_t count = 0;
  for (std::int64_t y = y0; y < y0 + h; ++y) {
    for (std::int64_t x = x0; x < x0 + w; ++x) {
      if (pe[y * ew + x] != 0.0f) ++count;
    }
  }
  return static_cast<float>(count) / static_cast<float>(h * w);
}

}  // namespace orbit2
