#pragma once
// Classical image filters on rank-2 [H, W] tensors.
//
// These feed the adaptive spatial compression stage (paper §III-A): the
// quad-tree partitions wherever Canny edge density exceeds a threshold, so
// Gaussian smoothing + Sobel gradients + non-maximum suppression +
// hysteresis are real substrate here, not decoration.

#include "tensor/tensor.hpp"

namespace orbit2 {

/// Separable Gaussian blur with the given sigma; kernel radius is
/// ceil(3*sigma). Border handling: clamp-to-edge.
Tensor gaussian_blur(const Tensor& image, float sigma);

/// Sobel gradients; writes dI/dx and dI/dy (clamp-to-edge borders).
void sobel(const Tensor& image, Tensor& grad_x, Tensor& grad_y);

/// Gradient magnitude sqrt(gx^2 + gy^2).
Tensor gradient_magnitude(const Tensor& grad_x, const Tensor& grad_y);

struct CannyParams {
  float sigma = 1.0f;          // pre-smoothing
  float low_threshold = 0.1f;  // fraction of max magnitude
  float high_threshold = 0.3f; // fraction of max magnitude
};

/// Full Canny edge detector: blur -> Sobel -> non-max suppression ->
/// double threshold -> hysteresis (BFS from strong edges). Returns a binary
/// {0,1} edge map.
Tensor canny(const Tensor& image, const CannyParams& params = {});

/// Fraction of edge pixels inside the rectangle [y0,y0+h) x [x0,x0+w) of a
/// binary edge map; the quad-tree's "feature density" measure.
float edge_density(const Tensor& edges, std::int64_t y0, std::int64_t x0,
                   std::int64_t h, std::int64_t w);

}  // namespace orbit2
