#pragma once
// Image file output for figure reproduction (Fig 7(b), Fig 8): grayscale
// PGM and false-colour PPM writers, plus simple normalization helpers.
// Binary netpbm formats need no external dependencies and open everywhere.

#include <string>

#include "tensor/tensor.hpp"

namespace orbit2 {

/// Writes a [H,W] tensor as binary PGM, linearly mapping [lo, hi] -> [0,255].
/// If lo == hi the tensor min/max are used.
void write_pgm(const std::string& path, const Tensor& image, float lo = 0.0f,
               float hi = 0.0f);

/// Writes a [H,W] tensor as binary PPM with a blue→white→red diverging
/// colormap centred at (lo+hi)/2; used for precipitation/temperature fields.
void write_ppm_diverging(const std::string& path, const Tensor& image,
                         float lo = 0.0f, float hi = 0.0f);

}  // namespace orbit2
