#include "quadtree/quadtree_ops.hpp"

namespace orbit2 {

using autograd::Var;

Var compress_tokens(const Var& tokens, std::int64_t grid_h,
                    std::int64_t grid_w,
                    const std::vector<PatchRect>& leaves) {
  Tensor value = pool_tokens(tokens.value(), grid_h, grid_w, leaves);
  return autograd::make_op(
      std::move(value), {tokens},
      [tokens, grid_h, grid_w, leaves](const Tensor& g) {
        autograd::accumulate_into(
            tokens, pool_tokens_adjoint(g, grid_h, grid_w, leaves));
      });
}

Var decompress_tokens(const Var& leaf_tokens, std::int64_t grid_h,
                      std::int64_t grid_w,
                      const std::vector<PatchRect>& leaves) {
  Tensor value = scatter_tokens(leaf_tokens.value(), grid_h, grid_w, leaves);
  return autograd::make_op(
      std::move(value), {leaf_tokens},
      [leaf_tokens, grid_h, grid_w, leaves](const Tensor& g) {
        autograd::accumulate_into(
            leaf_tokens, scatter_tokens_adjoint(g, grid_h, grid_w, leaves));
      });
}

}  // namespace orbit2
