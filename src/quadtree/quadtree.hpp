#pragma once
// Adaptive spatial compression (paper §III-A, Fig 3).
//
// After channel aggregation, Reslim projects features back to image space
// and recursively partitions the grid into quadrants wherever Canny edge
// density exceeds a threshold, stopping at a minimum patch size. Feature-
// rich regions end up with small patches (fine tokens), smooth regions with
// large patches (coarse tokens) — cutting sequence length by the measured
// compression ratio while preserving detail where it matters.
//
// This module provides the partitioner, a threshold search that hits a
// requested compression ratio (the paper sweeps 8x/16x/32x), and the
// pooling/scatter kernels (with exact adjoints) that map uniform-grid
// tokens to quad-tree leaf tokens and back.

#include <vector>

#include "tensor/tensor.hpp"

namespace orbit2 {

/// Axis-aligned cell of the token grid covered by one quad-tree leaf.
struct PatchRect {
  std::int64_t y0 = 0;
  std::int64_t x0 = 0;
  std::int64_t h = 0;
  std::int64_t w = 0;

  std::int64_t area() const { return h * w; }
  bool operator==(const PatchRect& o) const {
    return y0 == o.y0 && x0 == o.x0 && h == o.h && w == o.w;
  }
};

struct QuadTreeParams {
  /// A quadrant splits while its edge density exceeds this threshold.
  float density_threshold = 0.05f;
  /// Leaves never get smaller than this (in grid cells per side).
  std::int64_t min_patch = 1;
  /// Safety bound on recursion.
  std::int64_t max_depth = 16;
};

/// Recursively partitions the [H, W] grid of `edge_map` (a binary Canny
/// output or any non-negative density field treated as edges where > 0).
/// Returns leaves covering the grid exactly once.
std::vector<PatchRect> adaptive_partition(const Tensor& edge_map,
                                          const QuadTreeParams& params);

/// Binary-searches the density threshold so that the leaf count is at most
/// ceil(cells / target_ratio), i.e. compression >= target_ratio whenever the
/// min-patch constraint allows it. Returns the partition found.
std::vector<PatchRect> partition_with_target_ratio(const Tensor& edge_map,
                                                   float target_ratio,
                                                   std::int64_t min_patch = 1);

/// cells / leaves: achieved sequence-length reduction factor.
float compression_ratio(std::int64_t grid_h, std::int64_t grid_w,
                        const std::vector<PatchRect>& leaves);

/// Validates that `leaves` tile the grid exactly (disjoint, covering).
/// Throws on violation; used by tests and debug assertions.
void check_partition(std::int64_t grid_h, std::int64_t grid_w,
                     const std::vector<PatchRect>& leaves);

// ---- Token pooling / scatter kernels -------------------------------------
// Tokens live on a uniform (grid_h x grid_w) grid, row-major, [P, D].

/// Averages the tokens inside each leaf: [P, D] -> [L, D].
Tensor pool_tokens(const Tensor& tokens, std::int64_t grid_h,
                   std::int64_t grid_w, const std::vector<PatchRect>& leaves);

/// Scatters leaf tokens back to the uniform grid (each covered cell receives
/// its leaf's token): [L, D] -> [P, D].
Tensor scatter_tokens(const Tensor& leaf_tokens, std::int64_t grid_h,
                      std::int64_t grid_w,
                      const std::vector<PatchRect>& leaves);

/// Adjoint of pool_tokens (equals scatter with 1/area weights); needed for
/// backprop through the compression stage.
Tensor pool_tokens_adjoint(const Tensor& grad_leaf_tokens, std::int64_t grid_h,
                           std::int64_t grid_w,
                           const std::vector<PatchRect>& leaves);

/// Adjoint of scatter_tokens (sums cell grads into their leaf).
Tensor scatter_tokens_adjoint(const Tensor& grad_tokens, std::int64_t grid_h,
                              std::int64_t grid_w,
                              const std::vector<PatchRect>& leaves);

}  // namespace orbit2
