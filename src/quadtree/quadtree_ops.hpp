#pragma once
// Differentiable compression / decompression stage: the autograd bridge for
// the quad-tree pooling kernels, so gradients flow through the adaptive
// spatial compression module during training.

#include "autograd/variable.hpp"
#include "quadtree/quadtree.hpp"

namespace orbit2 {

/// Pools uniform-grid tokens [P, D] into leaf tokens [L, D] (averaging
/// within each leaf); differentiable.
autograd::Var compress_tokens(const autograd::Var& tokens, std::int64_t grid_h,
                              std::int64_t grid_w,
                              const std::vector<PatchRect>& leaves);

/// Scatters leaf tokens [L, D] back onto the uniform grid [P, D];
/// differentiable.
autograd::Var decompress_tokens(const autograd::Var& leaf_tokens,
                                std::int64_t grid_h, std::int64_t grid_w,
                                const std::vector<PatchRect>& leaves);

}  // namespace orbit2
