#include "quadtree/quadtree.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace orbit2 {

namespace {

/// Summed-area table of (edge_map > 0) for O(1) density queries.
class EdgeIntegral {
 public:
  explicit EdgeIntegral(const Tensor& edge_map)
      : h_(edge_map.dim(0)), w_(edge_map.dim(1)),
        table_(static_cast<std::size_t>((h_ + 1) * (w_ + 1)), 0) {
    const float* src = edge_map.data().data();
    for (std::int64_t y = 0; y < h_; ++y) {
      for (std::int64_t x = 0; x < w_; ++x) {
        const std::int64_t on = src[y * w_ + x] > 0.0f ? 1 : 0;
        at(y + 1, x + 1) = on + at(y, x + 1) + at(y + 1, x) - at(y, x);
      }
    }
  }

  float density(const PatchRect& r) const {
    const std::int64_t count = at(r.y0 + r.h, r.x0 + r.w) - at(r.y0, r.x0 + r.w) -
                               at(r.y0 + r.h, r.x0) + at(r.y0, r.x0);
    return static_cast<float>(count) / static_cast<float>(r.area());
  }

 private:
  std::int64_t& at(std::int64_t y, std::int64_t x) {
    return table_[static_cast<std::size_t>(y * (w_ + 1) + x)];
  }
  std::int64_t at(std::int64_t y, std::int64_t x) const {
    return table_[static_cast<std::size_t>(y * (w_ + 1) + x)];
  }

  std::int64_t h_, w_;
  std::vector<std::int64_t> table_;
};

void subdivide(const EdgeIntegral& integral, const PatchRect& rect,
               const QuadTreeParams& params, std::int64_t depth,
               std::vector<PatchRect>& leaves) {
  const bool can_split = rect.h > params.min_patch || rect.w > params.min_patch;
  const bool should_split = integral.density(rect) > params.density_threshold;
  if (!can_split || !should_split || depth >= params.max_depth) {
    leaves.push_back(rect);
    return;
  }
  // Split into quadrants; odd sizes put the extra row/col in the first half
  // so degenerate zero-size children never occur.
  const std::int64_t h1 = std::max<std::int64_t>(rect.h - rect.h / 2,
                                                 std::min(rect.h, params.min_patch));
  const std::int64_t w1 = std::max<std::int64_t>(rect.w - rect.w / 2,
                                                 std::min(rect.w, params.min_patch));
  const std::int64_t h2 = rect.h - h1;
  const std::int64_t w2 = rect.w - w1;

  subdivide(integral, {rect.y0, rect.x0, h1, w1}, params, depth + 1, leaves);
  if (w2 > 0) {
    subdivide(integral, {rect.y0, rect.x0 + w1, h1, w2}, params, depth + 1,
              leaves);
  }
  if (h2 > 0) {
    subdivide(integral, {rect.y0 + h1, rect.x0, h2, w1}, params, depth + 1,
              leaves);
  }
  if (h2 > 0 && w2 > 0) {
    subdivide(integral, {rect.y0 + h1, rect.x0 + w1, h2, w2}, params,
              depth + 1, leaves);
  }
}

}  // namespace

std::vector<PatchRect> adaptive_partition(const Tensor& edge_map,
                                          const QuadTreeParams& params) {
  ORBIT2_REQUIRE(edge_map.rank() == 2, "adaptive_partition expects [H,W]");
  ORBIT2_REQUIRE(params.min_patch >= 1, "min_patch must be >= 1");
  const std::int64_t h = edge_map.dim(0), w = edge_map.dim(1);
  ORBIT2_REQUIRE(h >= 1 && w >= 1, "empty grid");
  EdgeIntegral integral(edge_map);
  std::vector<PatchRect> leaves;
  subdivide(integral, {0, 0, h, w}, params, 0, leaves);
  return leaves;
}

std::vector<PatchRect> partition_with_target_ratio(const Tensor& edge_map,
                                                   float target_ratio,
                                                   std::int64_t min_patch) {
  ORBIT2_REQUIRE(target_ratio >= 1.0f, "compression ratio must be >= 1");
  const std::int64_t cells = edge_map.dim(0) * edge_map.dim(1);
  const std::int64_t max_leaves = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(static_cast<float>(cells) / target_ratio)));

  QuadTreeParams params;
  params.min_patch = min_patch;

  // Density thresholds are fractions in [0, 1]; bisect for the smallest
  // threshold whose partition is small enough (smaller threshold => more
  // splitting => more leaves, monotonically).
  float lo = 0.0f, hi = 1.0f;
  std::vector<PatchRect> best;
  params.density_threshold = hi;
  best = adaptive_partition(edge_map, params);
  for (int iter = 0; iter < 24; ++iter) {
    params.density_threshold = 0.5f * (lo + hi);
    auto leaves = adaptive_partition(edge_map, params);
    if (static_cast<std::int64_t>(leaves.size()) <= max_leaves) {
      best = std::move(leaves);
      hi = params.density_threshold;
    } else {
      lo = params.density_threshold;
    }
  }
  return best;
}

float compression_ratio(std::int64_t grid_h, std::int64_t grid_w,
                        const std::vector<PatchRect>& leaves) {
  ORBIT2_REQUIRE(!leaves.empty(), "empty partition");
  return static_cast<float>(grid_h * grid_w) /
         static_cast<float>(leaves.size());
}

void check_partition(std::int64_t grid_h, std::int64_t grid_w,
                     const std::vector<PatchRect>& leaves) {
  std::vector<std::int8_t> covered(
      static_cast<std::size_t>(grid_h * grid_w), 0);
  for (const PatchRect& r : leaves) {
    ORBIT2_CHECK(r.h > 0 && r.w > 0, "degenerate leaf");
    ORBIT2_CHECK(r.y0 >= 0 && r.x0 >= 0 && r.y0 + r.h <= grid_h &&
                     r.x0 + r.w <= grid_w,
                 "leaf out of bounds");
    for (std::int64_t y = r.y0; y < r.y0 + r.h; ++y) {
      for (std::int64_t x = r.x0; x < r.x0 + r.w; ++x) {
        std::int8_t& cell = covered[static_cast<std::size_t>(y * grid_w + x)];
        ORBIT2_CHECK(cell == 0, "overlapping leaves at (" << y << "," << x << ")");
        cell = 1;
      }
    }
  }
  for (std::size_t i = 0; i < covered.size(); ++i) {
    ORBIT2_CHECK(covered[i] == 1, "uncovered cell " << i);
  }
}

namespace {
void check_token_grid(const Tensor& tokens, std::int64_t grid_h,
                      std::int64_t grid_w) {
  ORBIT2_REQUIRE(tokens.rank() == 2, "tokens must be [P, D]");
  ORBIT2_REQUIRE(tokens.dim(0) == grid_h * grid_w,
                 "token count " << tokens.dim(0) << " vs grid "
                                << grid_h * grid_w);
}
}  // namespace

Tensor pool_tokens(const Tensor& tokens, std::int64_t grid_h,
                   std::int64_t grid_w, const std::vector<PatchRect>& leaves) {
  check_token_grid(tokens, grid_h, grid_w);
  const std::int64_t d = tokens.dim(1);
  Tensor out = Tensor::zeros(Shape{static_cast<std::int64_t>(leaves.size()), d});
  const float* src = tokens.data().data();
  float* dst = out.data().data();
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    const PatchRect& r = leaves[l];
    float* leaf = dst + static_cast<std::int64_t>(l) * d;
    for (std::int64_t y = r.y0; y < r.y0 + r.h; ++y) {
      for (std::int64_t x = r.x0; x < r.x0 + r.w; ++x) {
        const float* cell = src + (y * grid_w + x) * d;
        for (std::int64_t f = 0; f < d; ++f) leaf[f] += cell[f];
      }
    }
    const float inv = 1.0f / static_cast<float>(r.area());
    for (std::int64_t f = 0; f < d; ++f) leaf[f] *= inv;
  }
  return out;
}

Tensor scatter_tokens(const Tensor& leaf_tokens, std::int64_t grid_h,
                      std::int64_t grid_w,
                      const std::vector<PatchRect>& leaves) {
  ORBIT2_REQUIRE(leaf_tokens.rank() == 2, "leaf tokens must be [L, D]");
  ORBIT2_REQUIRE(leaf_tokens.dim(0) ==
                     static_cast<std::int64_t>(leaves.size()),
                 "leaf token count mismatch");
  const std::int64_t d = leaf_tokens.dim(1);
  Tensor out = Tensor::zeros(Shape{grid_h * grid_w, d});
  const float* src = leaf_tokens.data().data();
  float* dst = out.data().data();
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    const PatchRect& r = leaves[l];
    const float* leaf = src + static_cast<std::int64_t>(l) * d;
    for (std::int64_t y = r.y0; y < r.y0 + r.h; ++y) {
      for (std::int64_t x = r.x0; x < r.x0 + r.w; ++x) {
        float* cell = dst + (y * grid_w + x) * d;
        std::copy(leaf, leaf + d, cell);
      }
    }
  }
  return out;
}

Tensor pool_tokens_adjoint(const Tensor& grad_leaf_tokens, std::int64_t grid_h,
                           std::int64_t grid_w,
                           const std::vector<PatchRect>& leaves) {
  ORBIT2_REQUIRE(grad_leaf_tokens.dim(0) ==
                     static_cast<std::int64_t>(leaves.size()),
                 "adjoint leaf count mismatch");
  const std::int64_t d = grad_leaf_tokens.dim(1);
  Tensor out = Tensor::zeros(Shape{grid_h * grid_w, d});
  const float* src = grad_leaf_tokens.data().data();
  float* dst = out.data().data();
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    const PatchRect& r = leaves[l];
    const float* leaf = src + static_cast<std::int64_t>(l) * d;
    const float inv = 1.0f / static_cast<float>(r.area());
    for (std::int64_t y = r.y0; y < r.y0 + r.h; ++y) {
      for (std::int64_t x = r.x0; x < r.x0 + r.w; ++x) {
        float* cell = dst + (y * grid_w + x) * d;
        for (std::int64_t f = 0; f < d; ++f) cell[f] += leaf[f] * inv;
      }
    }
  }
  return out;
}

Tensor scatter_tokens_adjoint(const Tensor& grad_tokens, std::int64_t grid_h,
                              std::int64_t grid_w,
                              const std::vector<PatchRect>& leaves) {
  check_token_grid(grad_tokens, grid_h, grid_w);
  const std::int64_t d = grad_tokens.dim(1);
  Tensor out =
      Tensor::zeros(Shape{static_cast<std::int64_t>(leaves.size()), d});
  const float* src = grad_tokens.data().data();
  float* dst = out.data().data();
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    const PatchRect& r = leaves[l];
    float* leaf = dst + static_cast<std::int64_t>(l) * d;
    for (std::int64_t y = r.y0; y < r.y0 + r.h; ++y) {
      for (std::int64_t x = r.x0; x < r.x0 + r.w; ++x) {
        const float* cell = src + (y * grid_w + x) * d;
        for (std::int64_t f = 0; f < d; ++f) leaf[f] += cell[f];
      }
    }
  }
  return out;
}

}  // namespace orbit2
