// Extreme sequence planning: the Table III scenario. Uses the hwsim
// cluster simulator to plan global hyper-resolution downscaling runs —
// including the paper's flagship 4.2-billion-token / 0.9 km configuration —
// and prints the parallelism plan and per-GPU memory budget for each.
//
//   $ ./examples/extreme_sequence

#include <cstdio>

#include "hwsim/perf_model.hpp"

namespace {

void plan_run(const char* label, orbit2::model::ModelConfig config,
              float compression, std::int64_t tiles, std::int64_t gpus) {
  using namespace orbit2::hwsim;
  FrontierTopology topo;
  config.out_channels = 18;

  const MaxSequenceResult result =
      max_sequence_length(config, compression, tiles, gpus, topo);
  std::printf("\n%s (%s, %.0fx compression, %lld tiles, %lld GPUs)\n", label,
              config.name.c_str(), compression, static_cast<long long>(tiles),
              static_cast<long long>(gpus));
  if (!result.feasible) {
    std::printf("  -> OOM: does not fit at any sequence length\n");
    const double state_bytes = result.at_limit.parameter_bytes +
                               result.at_limit.gradient_bytes +
                               result.at_limit.optimizer_bytes;
    std::printf("     (model state alone needs %.1f GB per GPU vs %.1f GB "
                "usable)\n",
                state_bytes / 1e9, topo.usable_bytes() / 1e9);
    return;
  }
  std::printf("  max sequence length: %lld tokens\n",
              static_cast<long long>(result.sequence_length));
  std::printf("  output grid: [%lld, %lld, 18] -> %.2f km global "
              "resolution\n",
              static_cast<long long>(result.out_h),
              static_cast<long long>(result.out_w), result.resolution_km);
  const auto& mem = result.at_limit;
  std::printf("  per-GPU memory at the limit (GB): params %.1f + grads %.1f "
              "+ optim %.1f\n    + transient %.1f + activations %.1f + "
              "attention %.1f + io %.1f = %.1f / %.1f\n",
              mem.parameter_bytes / 1e9, mem.gradient_bytes / 1e9,
              mem.optimizer_bytes / 1e9, mem.transient_layer_bytes / 1e9,
              mem.activation_bytes / 1e9, mem.attention_score_bytes / 1e9,
              mem.io_bytes / 1e9, mem.total() / 1e9,
              topo.usable_bytes() / 1e9);

  // Also estimate the training step under the equivalent plan.
  WorkloadSpec spec;
  spec.config = config;
  spec.lr_h = result.out_h / config.upscale;
  spec.lr_w = result.out_w / config.upscale;
  spec.tiles = tiles;
  spec.compression = compression;
  const ParallelismPlan plan =
      plan_parallelism(config, gpus, tiles, /*favor_sequence=*/true);
  const StepTimeBreakdown step = estimate_step(spec, plan, topo);
  std::printf("  plan: %s\n  estimated %.3f s per sample\n",
              plan.to_string().c_str(), step.per_sample_seconds);
}

}  // namespace

int main() {
  using namespace orbit2;
  std::printf("Extreme sequence-length planning on the simulated Frontier\n");
  std::printf("===========================================================\n");

  // A standard ViT for contrast (Table III rows 1-2).
  model::ModelConfig vit = model::preset_9_5m();
  vit.architecture = model::Architecture::kViTBaseline;
  plan_run("Standard ViT baseline", vit, 1.0f, 1, 8);
  model::ModelConfig vit_10b = model::preset_10b();
  vit_10b.architecture = model::Architecture::kViTBaseline;
  plan_run("Standard ViT baseline", vit_10b, 1.0f, 1, 8);

  // Reslim ladder up to the flagship configuration.
  plan_run("Reslim, plain", model::preset_9_5m(), 1.0f, 1, 8);
  plan_run("Reslim + compression + TILES", model::preset_9_5m(), 4.0f, 16, 8);
  plan_run("Flagship (paper: 4.2B tokens, 0.9 km)", model::preset_9_5m(),
           4.0f, 16, 128);
  plan_run("10B model at scale (paper: 671M tokens, 2.3 km)",
           model::preset_10b(), 4.0f, 16, 512);
  return 0;
}
