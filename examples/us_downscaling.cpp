// US regional downscaling: the paper's fine-tuning scenario (§V-E).
//
// Pretrains a Reslim on "global" synthetic data (fresh terrain per sample),
// saves a checkpoint, fine-tunes on a fixed US-like region (DAYMET
// analogue), and reports Table-IV style metrics for minimum temperature and
// total precipitation, before and after fine-tuning. Also demonstrates
// TILES training: the fine-tune runs tile-parallel on 4 virtual GPUs with
// per-batch gradient averaging.
//
//   $ ./examples/us_downscaling

#include <cstdio>

#include "model/reslim.hpp"
#include "train/checkpoint.hpp"
#include "train/evaluate.hpp"
#include "train/tiles_trainer.hpp"
#include "train/trainer.hpp"

namespace {

orbit2::data::DatasetConfig make_config(std::uint64_t seed, bool fixed) {
  orbit2::data::DatasetConfig config;
  config.hr_h = 32;
  config.hr_w = 64;
  config.upscale = 4;
  config.seed = seed;
  config.fixed_region = fixed;
  const auto& outs = orbit2::data::daymet_output_variables();
  config.output_variables = {outs[0], outs[2]};  // tmin, prcp
  return config;
}

orbit2::model::ModelConfig make_model_config() {
  orbit2::model::ModelConfig config = orbit2::model::preset_tiny();
  config.in_channels = 23;
  config.out_channels = 2;
  config.upscale = 4;
  return config;
}

void print_reports(const char* title,
                   const std::vector<orbit2::train::VariableReport>& reports) {
  std::printf("%s\n", title);
  for (const auto& r : reports) {
    std::printf("  %-6s R2 %7.4f  RMSE %8.4f  SSIM %6.3f  PSNR %6.2f\n",
                r.variable.c_str(), r.report.r2, r.report.rmse, r.report.ssim,
                r.report.psnr);
  }
}

}  // namespace

int main() {
  using namespace orbit2;

  // ---- Pretraining on global data ---------------------------------------
  data::SyntheticDataset global_data(make_config(11, /*fixed=*/false));
  Rng rng(2);
  model::ReslimModel model(make_model_config(), rng);

  train::TrainerConfig pre_config;
  pre_config.epochs = 10;
  pre_config.batch_size = 2;
  pre_config.lr = 2e-3f;
  train::Trainer pretrainer(model, pre_config);
  std::printf("pretraining on global synthetic ERA5 analogue...\n");
  std::vector<std::int64_t> indices = {0, 1, 2, 3, 4, 5, 6, 7};
  pretrainer.fit(global_data, indices);
  train::save_checkpoint("us_downscaling_pretrained.o2ck", model);
  std::printf("checkpoint written: us_downscaling_pretrained.o2ck\n\n");

  // ---- Evaluation on the US region before fine-tuning ---------------------
  data::SyntheticDataset us_data(make_config(12, /*fixed=*/true));
  const std::vector<std::int64_t> eval_indices = {8, 9};
  print_reports("US region, pretrained only:",
                train::evaluate_model(model, us_data, eval_indices));

  // ---- TILES fine-tuning on the US region -------------------------------
  std::printf("\nfine-tuning with TILES (2x2 tiles, halo 2, 4 virtual "
              "GPUs)...\n");
  train::TrainerConfig tune_config;
  tune_config.epochs = 1;
  tune_config.batch_size = 2;
  tune_config.lr = 1e-3f;
  train::TilesTrainer tiles_trainer(
      [] {
        Rng replica_rng(3);
        auto replica =
            std::make_unique<model::ReslimModel>(make_model_config(), replica_rng);
        train::load_checkpoint("us_downscaling_pretrained.o2ck", *replica);
        return replica;
      },
      TileSpec{2, 2, 2}, tune_config);

  for (int epoch = 0; epoch < 6; ++epoch) {
    const train::EpochStats stats = tiles_trainer.train_epoch(us_data, indices);
    std::printf("  epoch %d: loss %.4f, replica divergence %.2e\n", epoch,
                stats.mean_loss, tiles_trainer.replica_divergence());
  }

  // Evaluate the fine-tuned replica 0 (all replicas are in sync).
  print_reports("\nUS region, after TILES fine-tuning:",
                train::evaluate_model(tiles_trainer.replica(0), us_data,
                                      eval_indices));

  // Tiled inference: stitch a full prediction from per-tile downscaling.
  const data::Sample sample = us_data.sample(eval_indices[0]);
  const Tensor prediction = tiles_trainer.predict(sample.input);
  std::printf("\ntiled inference output: %s\n",
              prediction.shape().to_string().c_str());
  std::remove("us_downscaling_pretrained.o2ck");
  return 0;
}
