// Global inference generalization: the paper's ERA5 -> IMERG evaluation
// (Fig 8). A model is trained on "reanalysis" targets and then applied,
// without fine-tuning or bias correction, to downscale precipitation that
// is evaluated against "satellite observation" targets produced by an
// independent observation operator (sensor gain/additive noise + footprint
// smoothing).
//
//   $ ./examples/global_inference

#include <cstdio>

#include "data/temporal.hpp"
#include "image/io.hpp"
#include "metrics/metrics.hpp"
#include "model/reslim.hpp"
#include "train/evaluate.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace orbit2;

  // Global precipitation-only task: fresh terrain per sample.
  data::DatasetConfig dconfig;
  dconfig.hr_h = 32;
  dconfig.hr_w = 64;
  dconfig.upscale = 4;
  dconfig.seed = 99;
  dconfig.fixed_region = false;
  dconfig.output_variables = {data::daymet_output_variables()[2]};  // prcp
  data::SyntheticDataset reanalysis(dconfig);

  auto obs_config = dconfig;
  obs_config.observation_targets = true;
  data::SyntheticDataset satellite(obs_config);

  model::ModelConfig mconfig = model::preset_tiny();
  mconfig.in_channels = 23;
  mconfig.out_channels = 1;
  mconfig.upscale = 4;
  Rng rng(4);
  model::ReslimModel model(mconfig, rng);

  train::TrainerConfig tconfig;
  tconfig.epochs = 30;
  tconfig.batch_size = 2;
  tconfig.lr = 2e-3f;
  train::Trainer trainer(model, tconfig);
  std::printf("training on reanalysis-style targets...\n");
  trainer.fit(reanalysis, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});

  const std::vector<std::int64_t> eval_indices = {12, 13};
  const auto in_dist = train::evaluate_model(model, reanalysis, eval_indices);
  const auto vs_obs = train::evaluate_model(model, satellite, eval_indices);

  std::printf("\nprecipitation, log(x+1) space:\n");
  std::printf("  vs reanalysis truth:      R2 %7.4f  RMSE %7.4f  SSIM %6.3f"
              "  PSNR %6.2f\n",
              in_dist[0].report.r2, in_dist[0].report.rmse,
              in_dist[0].report.ssim, in_dist[0].report.psnr);
  std::printf("  vs satellite observation: R2 %7.4f  RMSE %7.4f  SSIM %6.3f"
              "  PSNR %6.2f\n",
              vs_obs[0].report.r2, vs_obs[0].report.rmse,
              vs_obs[0].report.ssim, vs_obs[0].report.psnr);
  std::printf("  (paper, vs IMERG:         R2  0.90   RMSE  0.34   SSIM "
              "0.96   PSNR 41.8)\n");

  // Write a visual triplet like the paper's Fig 8 animation frames.
  const data::Sample physical = satellite.sample_physical(eval_indices[0]);
  Tensor prediction = train::predict_physical(model, satellite, eval_indices[0]);
  const std::int64_t h = prediction.dim(1), w = prediction.dim(2);
  write_pgm("global_inference_observation.pgm",
            metrics::log1p_transform(
                physical.target.slice(0, 0, 1).reshape(Shape{h, w})));
  write_pgm("global_inference_prediction.pgm",
            metrics::log1p_transform(
                prediction.slice(0, 0, 1).reshape(Shape{h, w})));
  std::printf("\nwrote global_inference_{observation,prediction}.pgm\n");

  // Fig 8 is an animation: emit a short sequence of consecutive "days"
  // (AR(1)-persistent weather) downscaled by the trained model.
  data::TemporalConfig animation;
  animation.base = obs_config;
  animation.persistence = 0.85f;
  data::TemporalSequence sequence(animation);
  for (int day = 0; day < 4; ++day) {
    const data::Sample frame = sequence.next_day();
    Tensor frame_pred = model.predict_field(frame.input);
    satellite.output_normalizer().denormalize(frame_pred);
    char name[64];
    std::snprintf(name, sizeof(name), "global_inference_day%02d.pgm", day);
    const std::int64_t fh = frame_pred.dim(1), fw = frame_pred.dim(2);
    write_pgm(name, metrics::log1p_transform(
                        frame_pred.slice(0, 0, 1).reshape(Shape{fh, fw})));
  }
  std::printf("wrote global_inference_day00..03.pgm (animation frames)\n");
  return 0;
}
