// Quickstart: build a small Reslim foundation model, train it on synthetic
// paired climate data for a few epochs, downscale a held-out sample, and
// print accuracy metrics.
//
//   $ ./examples/quickstart [--trace PATH]
//
// With --trace PATH, the run records observability spans (train phases,
// kernels, attention) and writes Chrome trace-event JSON to PATH — load it
// in chrome://tracing or Perfetto, or summarize with tools/orbit2_trace.py.
//
// This walks the same API surface a real application uses:
//   data::SyntheticDataset  -> paired LR->HR samples
//   model::ReslimModel      -> the paper's architecture
//   train::Trainer          -> Bayesian-loss training loop
//   train::evaluate_model   -> Table-IV style metrics

#include <cstdio>
#include <cstring>
#include <string>

#include "core/obs.hpp"
#include "data/dataset.hpp"
#include "model/reslim.hpp"
#include "train/evaluate.hpp"
#include "train/trainer.hpp"

int main(int argc, char** argv) {
  using namespace orbit2;

  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace PATH]\n", argv[0]);
      return 2;
    }
  }
  if (!trace_path.empty()) obs::set_enabled(true);

  // 1. A paired downscaling dataset: 4x refinement, 23 ERA5-like input
  //    variables, 3 DAYMET-like outputs, deterministic in (seed, index).
  data::DatasetConfig dconfig;
  dconfig.hr_h = 32;
  dconfig.hr_w = 64;
  dconfig.upscale = 4;
  dconfig.seed = 7;
  dconfig.fixed_region = true;
  data::SyntheticDataset dataset(dconfig);
  std::printf("dataset: input %s -> target %s\n",
              dataset.sample(0).input.shape().to_string().c_str(),
              dataset.sample(0).target.shape().to_string().c_str());

  // 2. A small Reslim: flash attention, residual path, Bayesian loss.
  model::ModelConfig mconfig = model::preset_tiny();
  mconfig.in_channels = 23;
  mconfig.out_channels = 3;
  mconfig.upscale = 4;
  Rng rng(1);
  model::ReslimModel model(mconfig, rng);
  std::printf("model: %s, %lld parameters\n", mconfig.name.c_str(),
              static_cast<long long>(model.parameter_count()));

  // 3. Train for a few epochs.
  train::TrainerConfig tconfig;
  tconfig.epochs = 14;
  tconfig.batch_size = 2;
  tconfig.lr = 2e-3f;
  train::Trainer trainer(model, tconfig);
  std::vector<std::int64_t> train_indices = {0, 1, 2, 3, 4, 5, 6, 7};
  for (std::int64_t epoch = 0; epoch < tconfig.epochs; ++epoch) {
    const train::EpochStats stats = trainer.train_epoch(dataset, train_indices);
    if (epoch % 4 == 0 || epoch == tconfig.epochs - 1) {
      std::printf("epoch %lld: loss %.4f (%.2f s, %.3f s/sample)\n",
                  static_cast<long long>(epoch), stats.mean_loss,
                  stats.seconds, stats.seconds_per_sample());
    }
  }

  // 4. Downscale a held-out sample and evaluate in physical units.
  const auto reports = train::evaluate_model(model, dataset, {8, 9});
  std::printf("\nheld-out evaluation:\n");
  for (const auto& report : reports) {
    std::printf("  %-6s R2 %7.4f  RMSE %8.4f  SSIM %6.3f  PSNR %6.2f\n",
                report.variable.c_str(), report.report.r2, report.report.rmse,
                report.report.ssim, report.report.psnr);
  }
  std::printf("\nDone. See examples/us_downscaling.cpp for the full "
              "fine-tuning scenario.\n");

  if (!trace_path.empty()) {
    obs::set_enabled(false);
    obs::write_chrome_trace(trace_path);
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  return 0;
}
