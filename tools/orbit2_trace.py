#!/usr/bin/env python3
"""Validate and summarize ORBIT-2 Chrome trace-event JSON.

Usage:
    orbit2_trace.py TRACE.json              # validate + print summary
    orbit2_trace.py --validate TRACE.json   # validate only (exit 1 on errors)
    orbit2_trace.py --top N TRACE.json      # show N top spans (default 15)

The input is the format written by orbit2::obs::write_chrome_trace():
{"traceEvents": [...], ...} with "X" (complete) span events, "M" metadata
events, and "C" counter events. Wall-clock spans live on pid 1, simulated
hwsim time on pid 2. The same file loads in chrome://tracing and Perfetto.
"""

import argparse
import json
import sys
from collections import defaultdict

VALID_PHASES = {"X", "M", "C"}


def validate(trace):
    """Returns a list of schema-violation strings (empty = valid)."""
    errors = []
    if not isinstance(trace, dict):
        return ["top level is not a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            errors.append(f"{where}: unexpected ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing/empty name")
        if ph == "M":
            continue
        for key in ("ts", "pid", "tid"):
            if not isinstance(ev.get(key), (int, float)):
                errors.append(f"{where}: missing numeric {key}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)):
                errors.append(f"{where}: X event missing numeric dur")
            elif dur < 0:
                errors.append(f"{where}: negative dur {dur}")
            if isinstance(ev.get("ts"), (int, float)) and ev["ts"] < 0:
                errors.append(f"{where}: negative ts {ev['ts']}")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            errors.append(f"{where}: C event missing args")
    return errors


def span_events(trace, simulated):
    want_pid = 2 if simulated else 1
    for ev in trace["traceEvents"]:
        if ev.get("ph") == "X" and ev.get("pid") == want_pid:
            yield ev


def summarize(trace, top_n):
    lines = []
    for simulated, label in ((False, "wall clock"), (True, "simulated clock")):
        by_name = defaultdict(lambda: [0, 0.0])  # name -> [count, total_us]
        by_cat = defaultdict(float)
        for ev in span_events(trace, simulated):
            entry = by_name[ev["name"]]
            entry[0] += 1
            entry[1] += ev["dur"]
            by_cat[ev.get("cat", "?")] += ev["dur"]
        if not by_name:
            continue
        lines.append(f"== spans ({label}) ==")
        lines.append(f"{'name':<32} {'count':>8} {'total ms':>12} {'mean us':>12}")
        ranked = sorted(by_name.items(), key=lambda kv: -kv[1][1])
        for name, (count, total_us) in ranked[:top_n]:
            lines.append(
                f"{name:<32} {count:>8} {total_us / 1000.0:>12.3f} "
                f"{total_us / count:>12.1f}"
            )
        if len(ranked) > top_n:
            lines.append(f"... {len(ranked) - top_n} more span names")
        lines.append("")
        lines.append(f"== per-category totals ({label}) ==")
        for cat, total_us in sorted(by_cat.items(), key=lambda kv: -kv[1]):
            lines.append(f"{cat:<32} {total_us / 1000.0:>12.3f} ms")
        lines.append("")

    counters = [
        ev for ev in trace["traceEvents"]
        if ev.get("ph") == "C" and isinstance(ev.get("args"), dict)
    ]
    if counters:
        lines.append("== counters ==")
        for ev in sorted(counters, key=lambda e: e["name"]):
            for key, value in ev["args"].items():
                lines.append(f"{ev['name']:<40} {key} = {value}")
        lines.append("")

    other = trace.get("otherData", {})
    if other:
        lines.append("== otherData ==")
        for key, value in sorted(other.items()):
            lines.append(f"{key} = {value}")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--validate", action="store_true",
                        help="validate only; no summary output")
    parser.add_argument("--top", type=int, default=15, metavar="N",
                        help="top span names to show (default 15)")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot parse {args.trace}: {err}", file=sys.stderr)
        return 1

    errors = validate(trace)
    if errors:
        for err in errors[:50]:
            print(f"error: {err}", file=sys.stderr)
        if len(errors) > 50:
            print(f"error: ... {len(errors) - 50} more", file=sys.stderr)
        return 1

    n_events = len(trace["traceEvents"])
    print(f"{args.trace}: valid ({n_events} events)")
    if not args.validate:
        summary = summarize(trace, args.top)
        if summary:
            print()
            print(summary)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # e.g. `orbit2_trace.py t.json | head`; exit quietly like cat does.
        sys.exit(0)
