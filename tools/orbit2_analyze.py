#!/usr/bin/env python3
"""orbit2_analyze: determinism & concurrency invariant checker for ORBIT-2.

Enforces the repo's bit-exactness contract as named, machine-checked rules
(see docs/ANALYSIS.md for the full catalog and rationale):

  float-accumulator      loop-carried scalar `float` accumulator mutated with
                         `+=`/`-=` (or `x = x + ...`) inside a loop body.
                         Accumulate in double, narrow once (the PR 5 loss
                         bug class).
  threading-outside-core std::thread / std::mutex / std::condition_variable /
                         private pools anywhere except src/core. Everything
                         else must route through kernels::parallel_for /
                         parallel_reduce (the PR 3 contract).
  unordered-iteration    range-for over std::unordered_map/unordered_set in
                         order-sensitive context: the file writes files or
                         hashes, or the loop body accumulates (`+=`).
                         Hash-table iteration order is unspecified.
  nondeterminism-source  std::rand/srand, std::random_device, time-seeded
                         RNG, pointer-to-integer casts (address-as-key).

Frontends (--frontend auto|clang|tokens):

  clang    drives `clang++ -fsyntax-only -Xclang -ast-dump=json` per
           translation unit listed in compile_commands.json (no libclang
           needed, just a clang++ binary); findings in headers are
           attributed through the AST's source locations.
  tokens   a conservative lexer-level fallback used when no clang++ is
           installed; analyzes every src/ file directly.

Both frontends feed one rule engine, one suppression mechanism, and one
output format, and agree exactly on the fixture corpus under
tests/analyze/fixtures/ (enforced by ctest).

Suppressions: one per line in tools/orbit2_analyze_suppressions.txt:
    <rule> <path>[:<line>] -- <justification>
The justification is mandatory; a suppression without one is a config error.
Unused suppressions are reported as warnings so the file cannot go stale
silently.

Exit status: 0 = no unsuppressed findings, 1 = unsuppressed findings,
2 = usage/config error.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import shlex
import shutil
import subprocess
import sys
from dataclasses import dataclass

RULE_FLOAT_ACC = "float-accumulator"
RULE_THREADING = "threading-outside-core"
RULE_UNORDERED = "unordered-iteration"
RULE_NONDET = "nondeterminism-source"
RULE_INTRINSICS = "intrinsics-outside-simd"
ALL_RULES = (RULE_FLOAT_ACC, RULE_THREADING, RULE_UNORDERED, RULE_NONDET,
             RULE_INTRINSICS)

# Directory (repo-relative, posix) whose files may own threading primitives.
THREADING_HOME = "src/core"

# Directory (repo-relative, posix) whose files may use vector intrinsics.
SIMD_HOME = "src/core/simd"


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str  # repo-relative posix path
    line: int
    message: str

    def key(self):
        return (self.path, self.line, self.rule)


@dataclass
class Suppression:
    rule: str
    path: str
    line: int | None
    justification: str
    source_line: int
    used: bool = False

    def matches(self, finding: Finding) -> bool:
        return (self.rule == finding.rule and self.path == finding.path and
                (self.line is None or self.line == finding.line))


# ---------------------------------------------------------------------------
# Shared lexical helpers
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving offsets/newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("".join(c if c == "\n" else " " for c in text[i:j + 2]))
            i = j + 2
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (j - i - 1) + (quote if j < n else ""))
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def line_of(code: str, offset: int) -> int:
    return code.count("\n", 0, offset) + 1


def match_forward(code: str, start: int, open_ch: str, close_ch: str) -> int:
    """Offset of the bracket closing the one at `start`, or -1."""
    depth = 0
    for i in range(start, len(code)):
        c = code[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


# ---------------------------------------------------------------------------
# Token frontend: loops, declarations, mutations
# ---------------------------------------------------------------------------

@dataclass
class Loop:
    start: int       # offset of the loop keyword
    body_begin: int  # offset of first body char
    body_end: int    # exclusive
    range_expr: str | None = None
    range_line: int | None = None

    def contains(self, off: int) -> bool:
        return self.body_begin <= off < self.body_end

    def spans(self, off: int) -> bool:
        """Anywhere in the loop including its header (init/cond/range)."""
        return self.start <= off < self.body_end


LOOP_KW_RE = re.compile(r"\b(for|while)\s*\(")
DO_RE = re.compile(r"\bdo\s*\{")

TYPE_KEYWORD_BLACKLIST = frozenset({
    "return", "else", "case", "new", "delete", "throw", "typedef", "using",
    "goto", "break", "continue", "if", "while", "for", "do", "switch",
    "public", "private", "protected", "class", "struct", "enum", "namespace",
    "template", "typename", "operator", "sizeof", "static_assert", "default",
    "co_return", "co_await", "co_yield", "not", "and", "or", "in",
})

DECL_RE = re.compile(
    r"\b(?P<const>const\s+)?"
    r"(?P<type>[A-Za-z_]\w*(?:::\w+)*(?:\s*<[^;{}]*?>)?)"
    r"(?P<ptrref>\s*[&*]+)?"
    r"\s+(?P<name>[A-Za-z_]\w*)\s*(?=[=;{,)]|:[^:])"
)

MUT_RE = re.compile(r"(?<![\w.>])([A-Za-z_]\w*)\s*(\+=|-=)(?!=)")
SELF_ASSIGN_RE = re.compile(
    r"(?<![\w.>])([A-Za-z_]\w*)\s*(?<![=!<>+\-*/&|^])=(?!=)\s*\1\s*[+\-](?![=+\-])")


def find_loops(code: str) -> list[Loop]:
    loops: list[Loop] = []
    for m in LOOP_KW_RE.finditer(code):
        open_paren = code.find("(", m.end() - 1)
        close_paren = match_forward(code, open_paren, "(", ")")
        if close_paren < 0:
            continue
        # Range-for: a ':' at depth 1 that is not part of '::'.
        range_expr = None
        range_line = None
        depth = 0
        if m.group(1) == "for":
            i = open_paren
            while i <= close_paren:
                c = code[i]
                if c in "([{":
                    depth += 1
                elif c in ")]}":
                    depth -= 1
                elif c == ":" and depth == 1:
                    if code[i - 1] != ":" and (i + 1 >= len(code) or
                                               code[i + 1] != ":"):
                        range_expr = code[i + 1:close_paren].strip()
                        range_line = line_of(code, i)
                        break
                    i += 1  # skip second ':' of '::'
                i += 1
        # Body: '{...}' or a single statement up to ';' at depth 0.
        j = close_paren + 1
        while j < len(code) and code[j].isspace():
            j += 1
        if j >= len(code):
            continue
        if code[j] == "{":
            body_end = match_forward(code, j, "{", "}")
            if body_end < 0:
                continue
            loops.append(Loop(m.start(), j + 1, body_end,
                              range_expr, range_line))
        else:
            depth = 0
            k = j
            while k < len(code):
                c = code[k]
                if c in "([{":
                    depth += 1
                elif c in ")]}":
                    depth -= 1
                elif c == ";" and depth == 0:
                    break
                k += 1
            loops.append(Loop(m.start(), j, k, range_expr, range_line))
    for m in DO_RE.finditer(code):
        j = code.find("{", m.start())
        body_end = match_forward(code, j, "{", "}")
        if body_end >= 0:
            loops.append(Loop(m.start(), j + 1, body_end))
    return loops


def collect_decls(code: str) -> dict[str, list[tuple[int, str, bool, bool]]]:
    """name -> [(offset, type, is_const, is_ptr_or_ref)] in source order."""
    decls: dict[str, list[tuple[int, str, bool, bool]]] = {}
    for m in DECL_RE.finditer(code):
        type_tok = m.group("type")
        base = type_tok.split("<")[0].split("::")[-1].strip()
        if base in TYPE_KEYWORD_BLACKLIST or type_tok in TYPE_KEYWORD_BLACKLIST:
            continue
        decls.setdefault(m.group("name"), []).append(
            (m.start("name"), type_tok,
             m.group("const") is not None,
             m.group("ptrref") is not None))
    return decls


def innermost_loop(loops: list[Loop], off: int) -> Loop | None:
    best = None
    for lp in loops:
        if lp.contains(off) and (best is None or lp.body_begin > best.body_begin):
            best = lp
    return best


# ---- rule: float-accumulator (tokens) -------------------------------------

def tokens_float_accumulator(path: str, code: str, findings: list[Finding]):
    loops = find_loops(code)
    if not loops:
        return
    decls = collect_decls(code)
    seen_offsets: set[int] = set()
    mutations = [(m.start(1), m.group(1), m.group(2))
                 for m in MUT_RE.finditer(code)]
    mutations += [(m.start(1), m.group(1), "= x +")
                  for m in SELF_ASSIGN_RE.finditer(code)]
    for off, name, op in mutations:
        if off in seen_offsets:
            continue
        loop = innermost_loop(loops, off)
        if loop is None:
            continue
        candidates = [d for d in decls.get(name, []) if d[0] < off]
        if not candidates:
            continue
        d_off, d_type, d_const, d_ptr = candidates[-1]
        if d_type != "float" or d_const or d_ptr:
            continue
        if loop.spans(d_off):
            continue  # declared inside this loop: re-initialized, not carried
        seen_offsets.add(off)
        findings.append(Finding(
            RULE_FLOAT_ACC, path, line_of(code, off),
            f"loop-carried float accumulator `{name}` (`{op}` in loop body); "
            "accumulate in double and narrow once"))


# ---- rule: threading-outside-core (tokens + textual) ----------------------

THREADING_TYPE_RE = re.compile(
    r"\bstd::(thread|jthread|mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
    r"condition_variable|condition_variable_any|async|promise|future|"
    r"shared_future|packaged_task|barrier|latch|counting_semaphore|"
    r"binary_semaphore|lock_guard|unique_lock|scoped_lock|shared_lock)\b")
THREADING_INCLUDE_RE = re.compile(
    r"#include\s+<(thread|mutex|condition_variable|future|barrier|latch|"
    r"semaphore|shared_mutex)>")
PRIVATE_POOL_RE = re.compile(r"\bThreadPool\b")


def path_is_threading_home(path: str) -> bool:
    return path.startswith(THREADING_HOME + "/")


def textual_threading_includes(path: str, text: str, findings: list[Finding]):
    """Include-directive detection is textual in BOTH frontends (headers are
    not AST nodes)."""
    if path_is_threading_home(path):
        return
    for m in THREADING_INCLUDE_RE.finditer(text):
        findings.append(Finding(
            RULE_THREADING, path, line_of(text, m.start()),
            f"#include <{m.group(1)}> outside {THREADING_HOME}; "
            "route parallelism through kernels::parallel_for/parallel_reduce"))


def tokens_threading(path: str, code: str, findings: list[Finding]):
    if path_is_threading_home(path):
        return
    for m in THREADING_TYPE_RE.finditer(code):
        findings.append(Finding(
            RULE_THREADING, path, line_of(code, m.start()),
            f"std::{m.group(1)} outside {THREADING_HOME}; "
            "route parallelism through kernels::parallel_for/parallel_reduce"))
    for m in PRIVATE_POOL_RE.finditer(code):
        findings.append(Finding(
            RULE_THREADING, path, line_of(code, m.start()),
            f"private ThreadPool outside {THREADING_HOME}; "
            "use the shared kernel-layer pool"))


# ---- rule: unordered-iteration (tokens) -----------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
ORDER_SENSITIVE_RE = re.compile(
    r"std::ofstream|std::fstream|\bfopen\b|\bfwrite\b|\bfprintf\b|"
    r"\bCrc32\b|\bcrc32\b|std::hash\b|\.write\(|write_pod\b")


def unordered_names(code: str) -> set[str]:
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        close = match_forward(code, m.end() - 1, "<", ">")
        if close < 0:
            continue
        tail = code[close + 1:close + 120]
        dm = re.match(r"\s*[&*]*\s*([A-Za-z_]\w*)", tail)
        if dm:
            names.add(dm.group(1))
    return names


def tokens_unordered_iteration(path: str, text: str, code: str,
                               findings: list[Finding]):
    names = unordered_names(code)
    file_sensitive = ORDER_SENSITIVE_RE.search(code) is not None
    for loop in find_loops(code):
        if loop.range_expr is None:
            continue
        expr = loop.range_expr
        direct = "unordered_" in expr
        named = any(re.search(rf"(?<![\w.>]){re.escape(n)}\b", expr)
                    for n in names)
        if not (direct or named):
            continue
        body = code[loop.body_begin:loop.body_end]
        accumulates = "+=" in body
        if not (file_sensitive or accumulates):
            continue
        why = ("file writes files/hashes" if file_sensitive
               else "loop body accumulates")
        findings.append(Finding(
            RULE_UNORDERED, path, loop.range_line or line_of(code, loop.start),
            "range-for over unordered container in order-sensitive context "
            f"({why}); iterate a sorted view or justify order-independence"))


# ---- rule: nondeterminism-source (tokens + textual) -----------------------

NONDET_PATTERNS = (
    (re.compile(r"\bstd::rand\b|(?<![\w:])\brand\s*\("),
     "std::rand is a nondeterministic/global-state RNG; use the seeded "
     "orbit2 Rng"),
    (re.compile(r"\bsrand\s*\("),
     "srand seeds global RNG state; use the seeded orbit2 Rng"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device is entropy-seeded; runs become irreproducible"),
    (re.compile(r"(?<![\w:])\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)|"
                r"\bstd::time\s*\("),
     "wall-clock seed; runs become irreproducible"),
    (re.compile(r"reinterpret_cast<\s*(?:std::)?uintptr_t\s*>"),
     "pointer-to-integer cast (address-as-key): addresses vary run to run"),
    (re.compile(r"std::hash<[^>]*\*\s*>"),
     "hashing a pointer keys on addresses, which vary run to run"),
)
CHRONO_SEED_RE = re.compile(
    r"^.*(?:system_clock|steady_clock|high_resolution_clock)::now.*"
    r"(?:seed|rng|engine|mt19937).*$|"
    r"^.*(?:seed|rng|engine|mt19937).*"
    r"(?:system_clock|steady_clock|high_resolution_clock)::now.*$",
    re.IGNORECASE | re.MULTILINE)


def tokens_nondeterminism(path: str, code: str, findings: list[Finding]):
    for pattern, message in NONDET_PATTERNS:
        for m in pattern.finditer(code):
            findings.append(Finding(RULE_NONDET, path,
                                    line_of(code, m.start()), message))


def textual_chrono_seed(path: str, code: str, findings: list[Finding]):
    """Clock value flowing into something seed/RNG-named on one line.
    Textual in BOTH frontends (plain clock reads for timing are fine)."""
    for m in CHRONO_SEED_RE.finditer(code):
        findings.append(Finding(
            RULE_NONDET, path, line_of(code, m.start()),
            "clock-derived RNG seed; runs become irreproducible"))


# ---- rule: intrinsics-outside-simd (textual) ------------------------------

INTRIN_INCLUDE_RE = re.compile(
    r"#include\s+<(immintrin\.h|x86intrin\.h|x86gprintrin\.h|"
    r"[a-z0-9]+mmintrin\.h|avx[a-z0-9]*intrin\.h|arm_neon\.h|arm_sve\.h)>")
INTRIN_TOKEN_RE = re.compile(
    r"\b(__m(?:64|128|256|512)[dhi]?\b|"
    r"_mm(?:256|512)?_[a-z0-9_]+|"
    r"(?:float|poly|int|uint)(?:8|16|32|64)x(?:1|2|4|8|16)(?:x[2-4])?_t\b|"
    r"v[a-z][a-z0-9]*q_[fsu](?:8|16|32|64)\b)")


def path_is_simd_home(path: str) -> bool:
    return path.startswith(SIMD_HOME + "/")


def textual_intrinsics(path: str, code: str, findings: list[Finding]):
    """Vector intrinsics are confined to src/core/simd/ so every other layer
    goes through the dispatched simd::Ops table (one scalar reference, one
    bit-exactness test surface, one place the determinism contract lives).
    Textual in BOTH frontends: intrinsics typically hide behind #if blocks
    the AST never enters."""
    if path_is_simd_home(path):
        return
    for m in INTRIN_INCLUDE_RE.finditer(code):
        findings.append(Finding(
            RULE_INTRINSICS, path, line_of(code, m.start()),
            f"#include <{m.group(1)}> outside {SIMD_HOME}; add a microkernel "
            "to the simd::Ops table instead of open-coding intrinsics"))
    for m in INTRIN_TOKEN_RE.finditer(code):
        findings.append(Finding(
            RULE_INTRINSICS, path, line_of(code, m.start()),
            f"vector intrinsic token `{m.group(1)}` outside {SIMD_HOME}; "
            "route through the dispatched simd::Ops table"))


def analyze_file_tokens(path: str, text: str) -> list[Finding]:
    code = strip_comments_and_strings(text)
    findings: list[Finding] = []
    tokens_float_accumulator(path, code, findings)
    textual_threading_includes(path, code, findings)
    textual_intrinsics(path, code, findings)
    tokens_threading(path, code, findings)
    tokens_unordered_iteration(path, text, code, findings)
    tokens_nondeterminism(path, code, findings)
    textual_chrono_seed(path, code, findings)
    return findings


# ---------------------------------------------------------------------------
# Clang JSON-AST frontend
# ---------------------------------------------------------------------------

CLANG_CANDIDATES = (
    "clang++", "clang++-20", "clang++-19", "clang++-18", "clang++-17",
    "clang++-16", "clang++-15", "clang++-14", "clang++-13", "clang++-12",
    "clang++-11", "clang++-10",
)


def find_clang() -> str | None:
    for name in CLANG_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


# -m* (target feature) and -ffp-contract flags are kept so the clang
# frontend can parse the src/core/simd/ vector TUs under the same target
# features they build with.
KEEP_FLAG_RE = re.compile(
    r"^(-I|-isystem|-D|-U|-std=|-include|-m|-ffp-contract)")


def clang_args_from_entry(entry: dict) -> list[str]:
    if "arguments" in entry:
        raw = list(entry["arguments"])
    else:
        raw = shlex.split(entry.get("command", ""))
    kept: list[str] = []
    i = 1  # skip compiler
    while i < len(raw):
        arg = raw[i]
        if arg in ("-I", "-isystem", "-D", "-U", "-include"):
            if i + 1 < len(raw):
                kept += [arg, raw[i + 1]]
            i += 2
            continue
        if KEEP_FLAG_RE.match(arg):
            kept.append(arg)
        i += 1
    if not any(a.startswith("-std=") for a in kept):
        kept.append("-std=c++20")
    return kept


def run_clang_ast(clang: str, args: list[str], source: str,
                  cwd: str | None) -> dict | None:
    cmd = [clang, "-fsyntax-only", "-w", "-Xclang", "-ast-dump=json",
           *args, source]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, cwd=cwd,
                              timeout=300)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if not proc.stdout:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


class AstWalker:
    """Walks a clang JSON AST in serialization order, replaying the dump's
    differential source-location encoding, and applies the AST-level rules.

    Findings are attributed to repo-relative paths; nodes located in files
    outside `accept` (e.g. system headers) update location state but emit
    nothing.
    """

    LOOP_KINDS = frozenset(
        {"ForStmt", "WhileStmt", "DoStmt", "CXXForRangeStmt"})

    def __init__(self, accept: dict[str, str], file_texts: dict[str, str]):
        # accept: absolute real path -> repo-relative posix path
        self.accept = accept
        self.file_texts = file_texts
        self.cur_file: str | None = None
        self.cur_line: int = 0
        self.loop_stack: list[str] = []
        self.decl_frames: dict[str, tuple[str, ...]] = {}
        self.decl_types: dict[str, str] = {}
        self.findings: list[Finding] = []

    # -- location replay ----------------------------------------------------

    def _apply_loc(self, loc) -> None:
        if not isinstance(loc, dict):
            return
        if "spellingLoc" in loc or "expansionLoc" in loc:
            self._apply_loc(loc.get("spellingLoc"))
            self._apply_loc(loc.get("expansionLoc"))
            return
        if "file" in loc:
            self.cur_file = loc["file"]
        if "line" in loc:
            self.cur_line = loc["line"]

    def _here(self) -> tuple[str | None, int]:
        if self.cur_file is None:
            return None, self.cur_line
        try:
            real = os.path.realpath(self.cur_file)
        except OSError:
            return None, self.cur_line
        return self.accept.get(real), self.cur_line

    def _emit(self, rule: str, message: str, where=None) -> None:
        path, line = where if where is not None else self._here()
        if path is not None:
            self.findings.append(Finding(rule, path, line, message))

    # -- traversal ----------------------------------------------------------

    def walk(self, node) -> None:
        if not isinstance(node, dict) or not node.get("kind"):
            return
        self._apply_loc(node.get("loc"))
        here = self._here()
        rng = node.get("range")
        if isinstance(rng, dict):
            self._apply_loc(rng.get("begin"))
            begin_here = self._here()
            self._apply_loc(rng.get("end"))
            end_line = self.cur_line
        else:
            begin_here = here
            end_line = here[1]
        if node.get("loc") is None:
            here = begin_here

        kind = node["kind"]
        self._visit(node, kind, here, begin_here, end_line)

        if kind in self.LOOP_KINDS:
            self.loop_stack.append(node.get("id", f"loop@{id(node)}"))
            for child in node.get("inner", ()):
                self.walk(child)
            self.loop_stack.pop()
        else:
            for child in node.get("inner", ()):
                self.walk(child)

    # -- rule hooks ---------------------------------------------------------

    def _visit(self, node, kind, here, begin_here, end_line) -> None:
        if kind in ("VarDecl", "ParmVarDecl", "FieldDecl"):
            nid = node.get("id")
            qual = node.get("type", {}).get("qualType", "")
            if nid:
                self.decl_frames[nid] = tuple(self.loop_stack)
                self.decl_types[nid] = qual
            self._check_threading_type(qual, here)
            if "random_device" in qual:
                self._emit(RULE_NONDET,
                           "std::random_device is entropy-seeded; runs "
                           "become irreproducible", here)
        elif kind in ("CXXConstructExpr", "CXXTemporaryObjectExpr"):
            qual = node.get("type", {}).get("qualType", "")
            if "random_device" in qual:
                self._emit(RULE_NONDET,
                           "std::random_device is entropy-seeded; runs "
                           "become irreproducible", here)
        elif kind == "CompoundAssignOperator":
            if node.get("opcode") in ("+=", "-="):
                self._check_float_accumulator(node, here, node.get("opcode"))
        elif kind == "BinaryOperator":
            if node.get("opcode") == "=":
                self._check_self_assign(node, here)
        elif kind == "DeclRefExpr":
            ref = node.get("referencedDecl", {})
            if (ref.get("kind") == "FunctionDecl" and
                    ref.get("name") in ("rand", "srand", "time")):
                msg = {
                    "rand": "std::rand is a nondeterministic/global-state "
                            "RNG; use the seeded orbit2 Rng",
                    "srand": "srand seeds global RNG state; use the seeded "
                             "orbit2 Rng",
                    "time": "wall-clock seed; runs become irreproducible",
                }[ref["name"]]
                self._emit(RULE_NONDET, msg, here)
        elif kind in ("CXXReinterpretCastExpr", "CStyleCastExpr"):
            if node.get("castKind") == "PointerToIntegral":
                self._emit(RULE_NONDET,
                           "pointer-to-integer cast (address-as-key): "
                           "addresses vary run to run", here)
        elif kind == "CXXForRangeStmt":
            self._check_unordered_range(node, here)

    def _check_threading_type(self, qual: str, here) -> None:
        path = here[0]
        if path is None or path_is_threading_home(path):
            return
        m = THREADING_TYPE_RE.search(qual)
        if m:
            self._emit(RULE_THREADING,
                       f"std::{m.group(1)} outside {THREADING_HOME}; route "
                       "parallelism through kernels::parallel_for/"
                       "parallel_reduce", here)
        elif re.search(r"\bThreadPool\b", qual):
            self._emit(RULE_THREADING,
                       f"private ThreadPool outside {THREADING_HOME}; use "
                       "the shared kernel-layer pool", here)

    @staticmethod
    def _unwrap(node):
        while isinstance(node, dict) and node.get("kind") in (
                "ImplicitCastExpr", "ParenExpr"):
            inner = node.get("inner", ())
            if not inner:
                return node
            node = inner[0]
        return node

    def _float_lhs_decl(self, node) -> str | None:
        """DeclRefExpr id if LHS is a non-const float scalar variable."""
        inner = node.get("inner", ())
        if not inner:
            return None
        lhs = self._unwrap(inner[0])
        if not isinstance(lhs, dict) or lhs.get("kind") != "DeclRefExpr":
            return None
        ref = lhs.get("referencedDecl", {})
        if ref.get("kind") not in ("VarDecl", "ParmVarDecl"):
            return None
        qual = ref.get("type", {}).get("qualType", "")
        if qual != "float":
            return None
        return ref.get("id")

    def _loop_carried(self, decl_id: str | None) -> bool:
        if decl_id is None or not self.loop_stack:
            return False
        frames = self.decl_frames.get(decl_id)
        if frames is None:
            return False  # decl never seen (e.g. extern): stay conservative
        stack = tuple(self.loop_stack)
        return len(frames) < len(stack) and stack[:len(frames)] == frames

    def _check_float_accumulator(self, node, here, op) -> None:
        decl_id = self._float_lhs_decl(node)
        if self._loop_carried(decl_id):
            self._emit(RULE_FLOAT_ACC,
                       f"loop-carried float accumulator (`{op}` in loop "
                       "body); accumulate in double and narrow once", here)

    def _check_self_assign(self, node, here) -> None:
        decl_id = self._float_lhs_decl(node)
        if decl_id is None or not self._loop_carried(decl_id):
            return
        inner = node.get("inner", ())
        if len(inner) < 2:
            return
        rhs = self._unwrap(inner[1])
        if not isinstance(rhs, dict) or rhs.get("kind") != "BinaryOperator":
            return
        if rhs.get("opcode") not in ("+", "-"):
            return
        rhs_inner = rhs.get("inner", ())
        if not rhs_inner:
            return
        first = self._unwrap(rhs_inner[0])
        if (isinstance(first, dict) and first.get("kind") == "DeclRefExpr" and
                first.get("referencedDecl", {}).get("id") == decl_id):
            self._emit(RULE_FLOAT_ACC,
                       "loop-carried float accumulator (`x = x + ...` in "
                       "loop body); accumulate in double and narrow once",
                       here)

    def _subtree_has_unordered(self, node, depth=0) -> bool:
        if not isinstance(node, dict) or depth > 12:
            return False
        qual = node.get("type", {}).get("qualType", "")
        if "unordered_map" in qual or "unordered_set" in qual:
            return True
        return any(self._subtree_has_unordered(c, depth + 1)
                   for c in node.get("inner", ()))

    def _check_unordered_range(self, node, here) -> None:
        path, line = here
        if path is None:
            return
        inner = list(node.get("inner", ()))
        if not inner:
            return
        body = inner[-1]
        head = inner[:-1]
        if not any(self._subtree_has_unordered(c) for c in head):
            return
        text = self.file_texts.get(path)
        if text is None:
            return
        code = strip_comments_and_strings(text)
        file_sensitive = ORDER_SENSITIVE_RE.search(code) is not None
        accumulates = False
        brange = body.get("range") if isinstance(body, dict) else None
        if isinstance(brange, dict):
            b0 = brange.get("begin", {}).get("line", line)
            b1 = brange.get("end", {}).get("line", b0)
            lines = text.splitlines()
            snippet = "\n".join(lines[max(0, b0 - 1):b1])
            accumulates = "+=" in snippet
        if file_sensitive or accumulates:
            why = ("file writes files/hashes" if file_sensitive
                   else "loop body accumulates")
            self._emit(RULE_UNORDERED,
                       "range-for over unordered container in "
                       f"order-sensitive context ({why}); iterate a sorted "
                       "view or justify order-independence", here)


def analyze_clang(clang: str, tus: list[tuple[str, list[str], str | None]],
                  accept: dict[str, str], file_texts: dict[str, str],
                  warn) -> tuple[list[Finding], list[str]]:
    """tus: (abs source, clang args, cwd). Returns (findings, failed TUs)."""
    findings: list[Finding] = []
    failed: list[str] = []
    for source, args, cwd in tus:
        ast = run_clang_ast(clang, args, source, cwd)
        if ast is None:
            failed.append(source)
            warn(f"clang frontend failed on {source}; "
                 "falling back to token frontend for this TU")
            continue
        walker = AstWalker(accept, file_texts)
        walker.walk(ast)
        findings.extend(walker.findings)
    return findings, failed


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

def load_suppressions(path: pathlib.Path) -> list[Suppression]:
    suppressions: list[Suppression] = []
    for lineno, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "--" not in line:
            raise SystemExit(
                f"{path}:{lineno}: suppression missing `-- justification` "
                "(justifications are mandatory)")
        head, _, justification = line.partition("--")
        justification = justification.strip()
        if not justification:
            raise SystemExit(
                f"{path}:{lineno}: empty justification (justifications are "
                "mandatory)")
        parts = head.split()
        if len(parts) != 2:
            raise SystemExit(
                f"{path}:{lineno}: expected `<rule> <path>[:<line>] -- "
                "<justification>`")
        rule, target = parts
        if rule not in ALL_RULES:
            raise SystemExit(
                f"{path}:{lineno}: unknown rule '{rule}' "
                f"(known: {', '.join(ALL_RULES)})")
        line_no: int | None = None
        if re.search(r":\d+$", target):
            target, _, num = target.rpartition(":")
            line_no = int(num)
        suppressions.append(
            Suppression(rule, target, line_no, justification, lineno))
    return suppressions


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

def repo_files(root: pathlib.Path, explicit: list[str]) -> list[pathlib.Path]:
    if explicit:
        files = [pathlib.Path(f).resolve() for f in explicit]
        for f in files:
            if not f.is_file():
                raise SystemExit(f"orbit2_analyze: no such file: {f}")
        return files
    base = root / "src"
    if not base.is_dir():
        raise SystemExit(f"orbit2_analyze: {root} has no src/ — wrong --root?")
    return sorted(p for p in base.rglob("*")
                  if p.suffix in (".hpp", ".cpp", ".h"))


def load_compile_commands(build_dir: pathlib.Path):
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        return None
    try:
        return json.loads(db_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("-p", "--build-dir", default=None,
                        help="build dir containing compile_commands.json "
                             "(clang frontend)")
    parser.add_argument("--frontend", choices=("auto", "clang", "tokens"),
                        default="auto")
    parser.add_argument("--suppressions", default=None,
                        help="suppression file (default: "
                             "tools/orbit2_analyze_suppressions.txt under "
                             "--root; 'none' disables)")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write all findings (incl. suppressed) as JSON")
    parser.add_argument("--show-suppressed", action="store_true")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--selftest", action="store_true",
                        help="run the embedded frontend self-tests and exit")
    parser.add_argument("files", nargs="*",
                        help="analyze only these files (fixture mode); "
                             "default: every C++ file under <root>/src")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(rule)
        return 0
    if args.selftest:
        return run_selftest()

    root = pathlib.Path(args.root).resolve()
    warn = lambda msg: print(f"orbit2_analyze: warning: {msg}",  # noqa: E731
                             file=sys.stderr)

    files = repo_files(root, args.files)
    rel_of: dict[str, str] = {}
    file_texts: dict[str, str] = {}
    for f in files:
        real = os.path.realpath(f)
        try:
            rel = f.relative_to(root).as_posix()
        except ValueError:
            rel = f.name  # fixture outside root: bare name
        rel_of[real] = rel
        file_texts[rel] = f.read_text(encoding="utf-8")

    clang = find_clang()
    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if clang else "tokens"
    if frontend == "clang" and not clang:
        print("orbit2_analyze: --frontend clang but no clang++ found",
              file=sys.stderr)
        return 2
    print(f"orbit2_analyze: frontend={frontend}", file=sys.stderr)

    findings: list[Finding] = []
    token_files = list(files)

    if frontend == "clang":
        tus: list[tuple[str, list[str], str | None]] = []
        if args.files:
            tus = [(os.path.realpath(f), ["-std=c++20"], None)
                   for f in files if f.suffix == ".cpp"]
        else:
            db = load_compile_commands(
                pathlib.Path(args.build_dir) if args.build_dir else root)
            if db is None:
                print("orbit2_analyze: clang frontend needs "
                      "compile_commands.json (pass -p <build-dir>; configure "
                      "with CMAKE_EXPORT_COMPILE_COMMANDS=ON)",
                      file=sys.stderr)
                return 2
            src_prefix = os.path.realpath(root / "src") + os.sep
            for entry in db:
                src = os.path.realpath(
                    os.path.join(entry.get("directory", "."), entry["file"]))
                if src.startswith(src_prefix):
                    tus.append((src, clang_args_from_entry(entry),
                                entry.get("directory")))
        clang_findings, failed = analyze_clang(
            clang, tus, rel_of, file_texts, warn)
        findings.extend(clang_findings)
        # Textual sub-rules still run over every file; full token analysis
        # only for TUs clang could not parse.
        failed_reals = {os.path.realpath(f) for f in failed}
        for f in files:
            rel = rel_of[os.path.realpath(f)]
            text = file_texts[rel]
            code = strip_comments_and_strings(text)
            if os.path.realpath(f) in failed_reals:
                findings.extend(analyze_file_tokens(rel, text))
            else:
                textual_threading_includes(rel, code, findings)
                textual_intrinsics(rel, code, findings)
                textual_chrono_seed(rel, code, findings)
        token_files = []

    for f in token_files:
        rel = rel_of[os.path.realpath(f)]
        findings.extend(analyze_file_tokens(rel, file_texts[rel]))

    # Dedupe (clang attributes header findings once per including TU).
    unique: dict[tuple, Finding] = {}
    for finding in findings:
        unique.setdefault(finding.key(), finding)
    findings = sorted(unique.values(), key=Finding.key)

    # Suppressions.
    if args.suppressions == "none":
        suppressions: list[Suppression] = []
    else:
        supp_path = (pathlib.Path(args.suppressions) if args.suppressions
                     else root / "tools" / "orbit2_analyze_suppressions.txt")
        suppressions = (load_suppressions(supp_path)
                        if supp_path.is_file() else [])

    unsuppressed: list[Finding] = []
    suppressed: list[tuple[Finding, Suppression]] = []
    for finding in findings:
        hit = next((s for s in suppressions if s.matches(finding)), None)
        if hit is not None:
            hit.used = True
            suppressed.append((finding, hit))
        else:
            unsuppressed.append(finding)

    for finding in unsuppressed:
        print(f"{finding.path}:{finding.line}: {finding.rule}: "
              f"{finding.message}")
    if args.show_suppressed:
        for finding, supp in suppressed:
            print(f"{finding.path}:{finding.line}: {finding.rule}: "
                  f"[suppressed: {supp.justification}]")
    for supp in suppressions:
        if not supp.used:
            warn(f"unused suppression (line {supp.source_line}): "
                 f"{supp.rule} {supp.path}"
                 f"{':' + str(supp.line) if supp.line else ''}")

    if args.json_out:
        payload = {
            "frontend": frontend,
            "findings": [
                {"rule": f.rule, "path": f.path, "line": f.line,
                 "message": f.message,
                 "suppressed": any(s.matches(f) for s in suppressions)}
                for f in findings],
        }
        pathlib.Path(args.json_out).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print(f"orbit2_analyze: {len(unsuppressed)} unsuppressed finding(s), "
          f"{len(suppressed)} suppressed", file=sys.stderr)
    return 1 if unsuppressed else 0


# ---------------------------------------------------------------------------
# Embedded self-tests (cover the clang AST walker without a clang install)
# ---------------------------------------------------------------------------

SELFTEST_TOKEN_CASES = [
    # (name, source, expected [(rule, line)])
    ("float_acc_bad", """\
float narrow_sum(const float* xs, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) {
    acc += xs[i];
  }
  return acc;
}
""", [(RULE_FLOAT_ACC, 4)]),
    ("float_acc_good_double", """\
float stable_sum(const float* xs, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += xs[i];
  return static_cast<float>(acc);
}
""", []),
    ("float_acc_good_reinit", """\
void per_iter(float* ys, const float* xs, int n) {
  for (int i = 0; i < n; ++i) {
    float s = 0.0f;
    s += xs[i];
    ys[i] = s;
  }
}
""", []),
    ("float_acc_self_assign", """\
float f(const float* xs, int n) {
  float total = 0.0f;
  int i = 0;
  while (i < n) {
    total = total + xs[i];
    ++i;
  }
  return total;
}
""", [(RULE_FLOAT_ACC, 5)]),
    ("threading_bad", """\
#include <thread>
void worker() {
  std::mutex m;
}
""", [(RULE_THREADING, 1), (RULE_THREADING, 3)]),
    ("unordered_bad", """\
#include <cstdio>
#include <unordered_map>
void dump(const std::unordered_map<int, float>& table, void* out) {
  for (const auto& kv : table) {
    std::fprintf((std::FILE*)out, "%d\\n", kv.first);
  }
}
""", [(RULE_UNORDERED, 4)]),
    ("unordered_good_membership", """\
#include <unordered_map>
bool has(const std::unordered_map<int, float>& m, int k) {
  return m.find(k) != m.end();
}
""", []),
    ("nondet_bad", """\
#include <cstdlib>
int roll() { return std::rand() % 6; }
""", [(RULE_NONDET, 2)]),
    ("intrinsics_bad", """\
#include <immintrin.h>
float first_lane(const float* p) {
  __m256 v = load8(p);
  return lane0(v);
}
""", [(RULE_INTRINSICS, 1), (RULE_INTRINSICS, 3)]),
    ("intrinsics_bad_neon", """\
#include <arm_neon.h>
void twice(float* p) {
  float32x4_t v = vld1q_f32(p);
  vst1q_f32(p, vaddq_f32(v, v));
}
""", [(RULE_INTRINSICS, 1), (RULE_INTRINSICS, 3), (RULE_INTRINSICS, 4)]),
    ("intrinsics_good_dispatch", """\
namespace simd { struct Ops { void (*scale_f32)(float*, float, long); }; }
const simd::Ops& ops();
void scale(float* y, float a, long n) { ops().scale_f32(y, a, n); }
""", []),
]

# A hand-written clang-style JSON AST for:
#   1 float g(const float* xs, int n) {
#   2   float acc = 0.0f;
#   3   for (int i = 0; i < n; ++i) {
#   4     acc += xs[i];
#   5   }
#   6   return acc;
#   7 }
# including the differential location encoding (later locs omit `file`, and
# omit `line` when unchanged).
SELFTEST_AST = {
    "id": "0x1", "kind": "TranslationUnitDecl", "loc": {}, "range": {},
    "inner": [{
        "id": "0x2", "kind": "FunctionDecl",
        "loc": {"offset": 6, "file": "selftest.cpp", "line": 1, "col": 7},
        "range": {"begin": {"offset": 0, "col": 1},
                  "end": {"offset": 120, "line": 7, "col": 1}},
        "name": "g", "type": {"qualType": "float (const float *, int)"},
        "inner": [
            {"id": "0x3", "kind": "ParmVarDecl",
             "loc": {"line": 1, "col": 21},
             "range": {"begin": {"col": 8}, "end": {"col": 21}},
             "name": "xs", "type": {"qualType": "const float *"}},
            {"id": "0x4", "kind": "ParmVarDecl",
             "loc": {"col": 29},
             "range": {"begin": {"col": 25}, "end": {"col": 29}},
             "name": "n", "type": {"qualType": "int"}},
            {"kind": "CompoundStmt",
             "range": {"begin": {"col": 32}, "end": {"line": 7, "col": 1}},
             "inner": [
                 {"kind": "DeclStmt",
                  "range": {"begin": {"line": 2, "col": 3},
                            "end": {"col": 19}},
                  "inner": [
                      {"id": "0x5", "kind": "VarDecl",
                       "loc": {"col": 9},
                       "range": {"begin": {"col": 3}, "end": {"col": 15}},
                       "name": "acc", "type": {"qualType": "float"},
                       "init": "c",
                       "inner": [{"kind": "FloatingLiteral",
                                  "range": {"begin": {"col": 15},
                                            "end": {"col": 15}},
                                  "type": {"qualType": "float"},
                                  "value": "0"}]}]},
                 {"kind": "ForStmt",
                  "range": {"begin": {"line": 3, "col": 3},
                            "end": {"line": 5, "col": 3}},
                  "inner": [
                      {"kind": "DeclStmt",
                       "range": {"begin": {"line": 3, "col": 8},
                                 "end": {"col": 17}},
                       "inner": [{"id": "0x6", "kind": "VarDecl",
                                  "loc": {"col": 12},
                                  "range": {"begin": {"col": 8},
                                            "end": {"col": 16}},
                                  "name": "i", "type": {"qualType": "int"}}]},
                      {}, {},
                      {"kind": "UnaryOperator",
                       "range": {"begin": {"col": 28}, "end": {"col": 30}},
                       "opcode": "++",
                       "inner": [{"kind": "DeclRefExpr",
                                  "range": {"begin": {"col": 30},
                                            "end": {"col": 30}},
                                  "type": {"qualType": "int"},
                                  "referencedDecl": {
                                      "id": "0x6", "kind": "VarDecl",
                                      "name": "i",
                                      "type": {"qualType": "int"}}}]},
                      {"kind": "CompoundStmt",
                       "range": {"begin": {"col": 33},
                                 "end": {"line": 5, "col": 3}},
                       "inner": [
                           {"kind": "CompoundAssignOperator",
                            "range": {"begin": {"line": 4, "col": 5},
                                      "end": {"col": 15}},
                            "type": {"qualType": "float"}, "opcode": "+=",
                            "inner": [
                                {"kind": "DeclRefExpr",
                                 "range": {"begin": {"col": 5},
                                           "end": {"col": 5}},
                                 "type": {"qualType": "float"},
                                 "referencedDecl": {
                                     "id": "0x5", "kind": "VarDecl",
                                     "name": "acc",
                                     "type": {"qualType": "float"}}},
                                {"kind": "ArraySubscriptExpr",
                                 "range": {"begin": {"col": 12},
                                           "end": {"col": 15}},
                                 "type": {"qualType": "const float"},
                                 "inner": []}]}]}]},
                 {"kind": "ReturnStmt",
                  "range": {"begin": {"line": 6, "col": 3},
                            "end": {"col": 10}},
                  "inner": [{"kind": "DeclRefExpr",
                             "range": {"begin": {"col": 10},
                                       "end": {"col": 10}},
                             "type": {"qualType": "float"},
                             "referencedDecl": {"id": "0x5",
                                                "kind": "VarDecl",
                                                "name": "acc",
                                                "type": {
                                                    "qualType": "float"}}}]}]
             }]}]}


def run_selftest() -> int:
    failures = 0
    for name, source, expected in SELFTEST_TOKEN_CASES:
        got = sorted({(f.rule, f.line)
                      for f in analyze_file_tokens(name + ".cpp", source)})
        want = sorted(set(expected))
        if got != want:
            print(f"selftest[tokens/{name}]: got {got}, want {want}",
                  file=sys.stderr)
            failures += 1

    # Clang walker over the canned AST: selftest.cpp is "in the repo".
    accept = {os.path.realpath("selftest.cpp"): "selftest.cpp"}
    walker = AstWalker(accept, {"selftest.cpp": ""})
    walker.walk(SELFTEST_AST)
    got = sorted({(f.rule, f.line) for f in walker.findings})
    want = [(RULE_FLOAT_ACC, 4)]
    if got != want:
        print(f"selftest[clang/canned-ast]: got {got}, want {want}",
              file=sys.stderr)
        failures += 1

    if failures:
        print(f"orbit2_analyze selftest: {failures} failure(s)",
              file=sys.stderr)
        return 1
    print("orbit2_analyze selftest: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
