#!/usr/bin/env python3
"""Repo-invariant lint for ORBIT-2. Registered as the `orbit2_lint` ctest.

Rules enforced (each is cheap, textual, and intentionally conservative):

  pragma-once      every header under src/, tests/, bench/, tools/ starts
                   with `#pragma once` (first non-comment line).
  no-raw-new       no raw `new` / `delete` expressions under src/; owning
                   allocations go through std::make_unique / make_shared /
                   containers.
  require-pure     ORBIT2_REQUIRE / ORBIT2_CHECK / ORBIT2_DCHECK condition
                   arguments must not contain side effects (assignment,
                   increment/decrement, compound assignment). The macros
                   evaluate the condition exactly once (see core/error.hpp),
                   but side-effecting check arguments read as load-bearing
                   and break under builds that compile checks out.
  core-iwyu        src/core headers include what they use for a curated set
                   of std:: symbols (include-what-you-use, reduced to the
                   symbols the substrate actually uses).

Exit status: 0 = clean, 1 = findings (printed one per line as
`path:line: rule: message`).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SOURCE_DIRS = ("src", "tests", "bench", "tools", "examples")

# Headers in these src/ subdirectories are held to the core-iwyu rule.
IWYU_DIRS = ("core", "tensor", "train")

# Curated std symbol -> required include map for the core-iwyu rule.
CORE_IWYU = {
    "std::array": "<array>",
    "std::atomic": "<atomic>",
    "std::condition_variable": "<condition_variable>",
    "std::deque": "<deque>",
    "std::exception_ptr": "<exception>",
    "std::function": "<functional>",
    "std::initializer_list": "<initializer_list>",
    "std::int64_t": "<cstdint>",
    "std::uint64_t": "<cstdint>",
    "std::uint32_t": "<cstdint>",
    "std::uint16_t": "<cstdint>",
    "std::uintptr_t": "<cstdint>",
    "std::size_t": "<cstddef>",
    "std::memcpy": "<cstring>",
    "std::mutex": "<mutex>",
    "std::ostringstream": "<sstream>",
    "std::runtime_error": "<stdexcept>",
    "std::shared_ptr": "<memory>",
    "std::span": "<span>",
    "std::string": "<string>",
    "std::thread": "<thread>",
    "std::unique_ptr": "<memory>",
    "std::vector": "<vector>",
}

CHECK_MACROS = ("ORBIT2_REQUIRE", "ORBIT2_CHECK", "ORBIT2_DCHECK")

# Side effects inside a condition: ++/--, compound assignment, or plain
# assignment (an `=` not part of ==, !=, <=, >=).
SIDE_EFFECT = re.compile(
    r"(\+\+|--|"
    r"[+\-*/%&|^]=|<<=|>>=|"
    r"(?<![=!<>+\-*/%&|^=])=(?![=]))"
)


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("".join(c if c == "\n" else " " for c in text[i : j + 2]))
            i = j + 2
        elif ch in "\"'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(" " * (j + 1 - i))
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def check_pragma_once(path: pathlib.Path, text: str, findings: list) -> None:
    stripped = strip_comments_and_strings(text)
    for line_no, line in enumerate(stripped.splitlines(), start=1):
        code = line.strip()
        if not code:
            continue
        if code != "#pragma once":
            findings.append((path, line_no, "pragma-once",
                             "first non-comment line must be `#pragma once`"))
        return
    findings.append((path, 1, "pragma-once", "header has no `#pragma once`"))


def check_raw_new_delete(path: pathlib.Path, text: str, findings: list) -> None:
    code = strip_comments_and_strings(text)
    for match in re.finditer(r"\bnew\b", code):
        prefix = code[: match.start()].rstrip()
        # `operator new` declares/defines an allocation function (the
        # debug_check alloc-counting hooks); `#include <new>` names the
        # header. Neither is a raw new *expression*, which is what this
        # rule bans.
        if prefix.endswith("operator") or prefix.endswith("<"):
            continue
        findings.append((path, line_of(code, match.start()), "no-raw-new",
                         "raw `new` — use std::make_unique/make_shared or a container"))
    for match in re.finditer(r"\bdelete\b", code):
        # `= delete` declarations and `operator delete` definitions are
        # idiomatic and allowed.
        prefix = code[: match.start()].rstrip()
        if prefix.endswith("=") or prefix.endswith("operator"):
            continue
        findings.append((path, line_of(code, match.start()), "no-raw-new",
                         "raw `delete` — ownership must be RAII-managed"))


def first_macro_argument(code: str, start: int) -> tuple[str, int]:
    """Given offset of '(' after a macro name, returns (first_arg, open_offset)."""
    depth = 0
    i = start
    arg_begin = start + 1
    while i < len(code):
        ch = code[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth == 0:
                return code[arg_begin:i], arg_begin
        elif ch == "," and depth == 1:
            return code[arg_begin:i], arg_begin
        i += 1
    return code[arg_begin:], arg_begin


def check_require_pure(path: pathlib.Path, text: str, findings: list) -> None:
    code = strip_comments_and_strings(text)
    for macro in CHECK_MACROS:
        for match in re.finditer(rf"\b{macro}\s*\(", code):
            open_paren = code.find("(", match.start())
            arg, arg_begin = first_macro_argument(code, open_paren)
            effect = SIDE_EFFECT.search(arg)
            if effect:
                findings.append(
                    (path, line_of(code, arg_begin + effect.start()), "require-pure",
                     f"{macro} condition contains a side effect "
                     f"(`{effect.group(0)}`); hoist it out of the check"))


def check_core_iwyu(path: pathlib.Path, text: str, findings: list) -> None:
    code = strip_comments_and_strings(text)
    includes = set(re.findall(r"#include\s+(<[^>]+>)", text))
    for symbol, header in CORE_IWYU.items():
        match = re.search(re.escape(symbol) + r"\b", code)
        if match and header not in includes:
            findings.append((path, line_of(code, match.start()), "core-iwyu",
                             f"uses {symbol} but does not include {header}"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"orbit2_lint: {root} has no src/ — wrong --root?", file=sys.stderr)
        return 2

    findings: list = []
    for top in SOURCE_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".hpp", ".cpp", ".h"):
                continue
            text = path.read_text(encoding="utf-8")
            rel = path.relative_to(root)
            if path.suffix in (".hpp", ".h"):
                check_pragma_once(rel, text, findings)
            if top == "src":
                check_raw_new_delete(rel, text, findings)
            check_require_pure(rel, text, findings)
            if (top == "src" and path.suffix == ".hpp"
                    and path.parent.name in IWYU_DIRS):
                check_core_iwyu(rel, text, findings)

    for path, line, rule, message in findings:
        print(f"{path}:{line}: {rule}: {message}")
    if findings:
        print(f"orbit2_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("orbit2_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
