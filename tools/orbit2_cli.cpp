// orbit2 — command-line driver for the ORBIT-2 reproduction.
//
// Subcommands:
//   generate   write a synthetic paired dataset to an .o2ds file
//   train      train a Reslim model (synthetic or file data), checkpoint it
//   evaluate   evaluate a checkpoint, print Table-IV style metrics
//   downscale  run one sample through a checkpoint, write PGM images
//   plan       hwsim: parallelism plan / memory / step time / max sequence
//
// Examples:
//   orbit2 generate --out us.o2ds --samples 16 --hr-h 64 --hr-w 128
//   orbit2 train --epochs 10 --model tiny --ckpt model.o2ck
//   orbit2 evaluate --ckpt model.o2ck
//   orbit2 downscale --ckpt model.o2ck --sample 9 --out-prefix field
//   orbit2 plan --model 10B --gpus 512 --tiles 16 --compression 4

#include <cstdio>
#include <string>

#include "core/args.hpp"
#include "data/io.hpp"
#include "hwsim/perf_model.hpp"
#include "image/io.hpp"
#include "metrics/metrics.hpp"
#include "model/reslim.hpp"
#include "train/checkpoint.hpp"
#include "train/evaluate.hpp"
#include "train/trainer.hpp"

namespace {

using namespace orbit2;

void print_usage() {
  std::printf(
      "usage: orbit2 <generate|train|evaluate|downscale|plan> [flags]\n"
      "  generate  --out F [--samples N] [--hr-h H] [--hr-w W] [--seed S]\n"
      "            [--upscale U] [--observation]\n"
      "  train     --ckpt F [--epochs N] [--samples N] [--model tiny|small]\n"
      "            [--lr X] [--batch N] [--mixed-precision] [--hr-h H] [--hr-w W]\n"
      "  evaluate  --ckpt F [--model tiny|small] [--samples N] [--hr-h H] [--hr-w W]\n"
      "  downscale --ckpt F [--model tiny|small] [--sample I] [--out-prefix P]\n"
      "  plan      [--model 9.5M|126M|1B|10B] [--gpus N] [--tiles T]\n"
      "            [--compression C]\n");
}

data::DatasetConfig dataset_config_from(const ArgParser& args) {
  data::DatasetConfig config;
  config.hr_h = args.get_int("--hr-h", 64);
  config.hr_w = args.get_int("--hr-w", 128);
  config.upscale = args.get_int("--upscale", 4);
  config.seed = static_cast<std::uint64_t>(args.get_int("--seed", 1234));
  config.fixed_region = true;
  config.observation_targets = args.has("--observation");
  return config;
}

model::ModelConfig model_config_from(const ArgParser& args,
                                     const data::DatasetConfig& dconfig) {
  const std::string name = args.get_string("--model", "tiny");
  model::ModelConfig config;
  if (name == "tiny") {
    config = model::preset_tiny();
  } else if (name == "small") {
    config = model::preset_small();
  } else {
    ORBIT2_FAIL("unknown --model '" << name << "' (tiny|small)");
  }
  config.in_channels =
      static_cast<std::int64_t>(dconfig.input_variables.size());
  config.out_channels =
      static_cast<std::int64_t>(dconfig.output_variables.size());
  config.upscale = dconfig.upscale;
  return config;
}

void fail_on_unused(const ArgParser& args) {
  const auto unused = args.unused_flags();
  if (unused.empty()) return;
  std::string all;
  for (const auto& flag : unused) all += flag + " ";
  ORBIT2_FAIL("unknown flag(s): " << all);
}

int cmd_generate(const ArgParser& args) {
  const std::string out = args.get_string("--out", "");
  ORBIT2_REQUIRE(!out.empty(), "generate requires --out FILE");
  const std::int64_t samples = args.get_int("--samples", 16);
  data::SyntheticDataset dataset(dataset_config_from(args));
  fail_on_unused(args);
  data::save_dataset(out, dataset, 0, samples);
  std::printf("wrote %lld samples to %s\n", static_cast<long long>(samples),
              out.c_str());
  return 0;
}

int cmd_train(const ArgParser& args) {
  const std::string ckpt = args.get_string("--ckpt", "");
  ORBIT2_REQUIRE(!ckpt.empty(), "train requires --ckpt FILE");
  const data::DatasetConfig dconfig = dataset_config_from(args);
  data::SyntheticDataset dataset(dconfig);
  const model::ModelConfig mconfig = model_config_from(args, dconfig);

  Rng rng(static_cast<std::uint64_t>(args.get_int("--model-seed", 1)));
  model::ReslimModel model(mconfig, rng);
  std::printf("model %s: %lld parameters\n", mconfig.name.c_str(),
              static_cast<long long>(model.parameter_count()));

  train::TrainerConfig tconfig;
  tconfig.epochs = args.get_int("--epochs", 10);
  tconfig.batch_size = args.get_int("--batch", 2);
  tconfig.lr = static_cast<float>(args.get_double("--lr", 2e-3));
  tconfig.mixed_precision = args.has("--mixed-precision");
  const std::int64_t samples = args.get_int("--samples", 12);
  fail_on_unused(args);

  train::Trainer trainer(model, tconfig);
  std::vector<std::int64_t> indices(static_cast<std::size_t>(samples));
  for (std::int64_t i = 0; i < samples; ++i) indices[static_cast<std::size_t>(i)] = i;
  for (std::int64_t epoch = 0; epoch < tconfig.epochs; ++epoch) {
    const auto stats = trainer.train_epoch(dataset, indices);
    std::printf("epoch %3lld  loss %.5f  (%.3f s/sample)\n",
                static_cast<long long>(epoch), stats.mean_loss,
                stats.seconds_per_sample());
  }
  train::save_checkpoint(ckpt, model);
  std::printf("checkpoint written: %s\n", ckpt.c_str());
  return 0;
}

int cmd_evaluate(const ArgParser& args) {
  const std::string ckpt = args.get_string("--ckpt", "");
  ORBIT2_REQUIRE(!ckpt.empty(), "evaluate requires --ckpt FILE");
  const data::DatasetConfig dconfig = dataset_config_from(args);
  data::SyntheticDataset dataset(dconfig);
  const model::ModelConfig mconfig = model_config_from(args, dconfig);
  const std::int64_t samples = args.get_int("--samples", 12);
  fail_on_unused(args);

  Rng rng(1);
  model::ReslimModel model(mconfig, rng);
  train::load_checkpoint(ckpt, model);

  std::vector<std::int64_t> eval_indices = {samples, samples + 1};
  const auto reports = train::evaluate_model(model, dataset, eval_indices);
  std::printf("%-8s %8s %9s %9s %9s %9s %7s %7s\n", "var", "R2", "RMSE",
              "RMSEs1", "RMSEs2", "RMSEs3", "SSIM", "PSNR");
  for (const auto& r : reports) {
    std::printf("%-8s %8.4f %9.4f %9.4f %9.4f %9.4f %7.3f %7.2f\n",
                r.variable.c_str(), r.report.r2, r.report.rmse,
                r.report.rmse_sigma1, r.report.rmse_sigma2,
                r.report.rmse_sigma3, r.report.ssim, r.report.psnr);
  }
  return 0;
}

int cmd_downscale(const ArgParser& args) {
  const std::string ckpt = args.get_string("--ckpt", "");
  ORBIT2_REQUIRE(!ckpt.empty(), "downscale requires --ckpt FILE");
  const data::DatasetConfig dconfig = dataset_config_from(args);
  data::SyntheticDataset dataset(dconfig);
  const model::ModelConfig mconfig = model_config_from(args, dconfig);
  const std::int64_t sample_index = args.get_int("--sample", 0);
  const std::string prefix = args.get_string("--out-prefix", "downscaled");
  fail_on_unused(args);

  Rng rng(1);
  model::ReslimModel model(mconfig, rng);
  train::load_checkpoint(ckpt, model);

  const data::Sample physical = dataset.sample_physical(sample_index);
  Tensor prediction = train::predict_physical(model, dataset, sample_index);
  const std::int64_t h = prediction.dim(1), w = prediction.dim(2);
  for (std::int64_t c = 0; c < prediction.dim(0); ++c) {
    const std::string& var =
        dconfig.output_variables[static_cast<std::size_t>(c)].name;
    const Tensor pred = prediction.slice(0, c, 1).reshape(Shape{h, w});
    const Tensor truth = physical.target.slice(0, c, 1).reshape(Shape{h, w});
    const float lo = std::min(truth.min(), pred.min());
    const float hi = std::max(truth.max(), pred.max());
    write_pgm(prefix + "_" + var + "_prediction.pgm", pred, lo, hi);
    write_pgm(prefix + "_" + var + "_truth.pgm", truth, lo, hi);
    std::printf("%s: R2 %.4f vs truth; wrote %s_%s_{prediction,truth}.pgm\n",
                var.c_str(), metrics::r2_score(pred, truth), prefix.c_str(),
                var.c_str());
  }
  return 0;
}

int cmd_plan(const ArgParser& args) {
  using namespace hwsim;
  const std::string name = args.get_string("--model", "9.5M");
  model::ModelConfig config;
  if (name == "9.5M") {
    config = model::preset_9_5m();
  } else if (name == "126M") {
    config = model::preset_126m();
  } else if (name == "1B") {
    config = model::preset_1b();
  } else if (name == "10B") {
    config = model::preset_10b();
  } else {
    ORBIT2_FAIL("unknown --model '" << name << "' (9.5M|126M|1B|10B)");
  }
  config.out_channels = 18;
  const std::int64_t gpus = args.get_int("--gpus", 8);
  const std::int64_t tiles = args.get_int("--tiles", 1);
  const auto compression =
      static_cast<float>(args.get_double("--compression", 1.0));
  fail_on_unused(args);

  FrontierTopology topo;
  const ParallelismPlan plan = plan_parallelism(config, gpus, tiles);
  std::printf("plan: %s\n", plan.to_string().c_str());

  WorkloadSpec spec;
  spec.config = config;
  spec.lr_h = 180;
  spec.lr_w = 360;
  spec.tiles = tiles;
  spec.compression = compression;
  const auto fit = check_fits(spec, plan, topo);
  std::printf("112->28 km task: %s (%.1f / %.1f GB per GPU)\n",
              fit.fits ? "fits" : "OOM", fit.breakdown.total() / 1e9,
              fit.budget_bytes / 1e9);
  if (fit.fits) {
    const auto step = estimate_step(spec, plan, topo);
    std::printf("estimated %.3e s/sample, sustained %.3e FLOPS\n",
                step.per_sample_seconds, step.sustained_flops);
  }
  const auto max_seq =
      max_sequence_length(config, compression, tiles, gpus, topo);
  if (max_seq.feasible) {
    std::printf("max sequence: %lld tokens -> [%lld, %lld, 18], %.2f km\n",
                static_cast<long long>(max_seq.sequence_length),
                static_cast<long long>(max_seq.out_h),
                static_cast<long long>(max_seq.out_w), max_seq.resolution_km);
  } else {
    std::printf("max sequence: OOM at any length\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    const std::string& command = args.subcommand();
    if (command == "generate") return cmd_generate(args);
    if (command == "train") return cmd_train(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "downscale") return cmd_downscale(args);
    if (command == "plan") return cmd_plan(args);
    print_usage();
    return command.empty() ? 1 : 2;
  } catch (const orbit2::Error& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
