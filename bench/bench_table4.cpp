// Table IV: downscaling accuracy for minimum temperature and total
// precipitation over the US, at two model capacities.
//
// Paper reference (7 km DAYMET, 9.5M vs 126M):
//  (a) tmin:  R2 0.991 -> 0.999, RMSE 3.81 -> 0.51 K, SSIM 0.958 -> 0.987,
//      PSNR 29.0 -> 46.0
//  (b) prcp:  R2 0.975 -> 0.979, RMSE 0.146 -> 0.135 (log space),
//      SSIM 0.931 -> 0.932, PSNR 29.0 -> 30.2
//
// This bench trains the same capacity pair at bench scale (tiny vs small
// Reslim on the DAYMET-analogue generator) and prints the full metric rows.
// Expected shape: the larger model improves every metric; precipitation is
// harder (lower R2) than temperature.

#include "bench/common.hpp"
#include "metrics/metrics.hpp"
#include "tensor/resize.hpp"

int main() {
  using namespace orbit2;
  bench::print_header(
      "Table IV — accuracy vs model capacity (real training, bench scale)");

  const data::DatasetConfig dconfig = bench::us_dataset_config(404, 64, 128);
  data::SyntheticDataset dataset(dconfig);
  const auto in_ch = static_cast<std::int64_t>(dconfig.input_variables.size());
  const auto out_ch = static_cast<std::int64_t>(dconfig.output_variables.size());
  const std::int64_t train_n = 16, epochs = 30;
  const auto eval_indices = bench::index_range(4, train_n);

  struct Row {
    std::string model_name;
    std::vector<train::VariableReport> reports;
    std::int64_t params;
  };
  std::vector<Row> rows;

  // Interpolation baseline: bilinear upsampling of the matching input
  // channel (the classical statistical-downscaling reference point).
  {
    Row baseline;
    baseline.model_name = "bilinear baseline";
    baseline.params = 0;
    const auto t2m = static_cast<std::int64_t>(
        data::variable_index(dconfig.input_variables, "t2m"));
    const auto pr = static_cast<std::int64_t>(data::variable_index(
        dconfig.input_variables, "total_precipitation"));
    std::vector<std::vector<float>> pred_pool(2), truth_pool(2);
    double ssim_sum[2] = {0, 0};
    for (std::int64_t index : eval_indices) {
      const data::Sample s = dataset.sample_physical(index);
      const Tensor up = resize_bilinear(s.input, dconfig.hr_h, dconfig.hr_w);
      const Tensor fields[2] = {
          up.slice(0, t2m, 1).reshape(Shape{dconfig.hr_h, dconfig.hr_w})
              .add_scalar(-4.0f),  // climatological tmin offset from t2m
          metrics::log1p_transform(
              up.slice(0, pr, 1).reshape(Shape{dconfig.hr_h, dconfig.hr_w}))};
      const Tensor truths[2] = {
          s.target.slice(0, 0, 1).reshape(Shape{dconfig.hr_h, dconfig.hr_w}),
          metrics::log1p_transform(
              s.target.slice(0, 1, 1).reshape(Shape{dconfig.hr_h, dconfig.hr_w}))};
      for (int v = 0; v < 2; ++v) {
        pred_pool[v].insert(pred_pool[v].end(), fields[v].data().begin(),
                            fields[v].data().end());
        truth_pool[v].insert(truth_pool[v].end(), truths[v].data().begin(),
                             truths[v].data().end());
        ssim_sum[v] += metrics::ssim(fields[v], truths[v]);
      }
    }
    const char* names[2] = {"tmin", "prcp"};
    for (int v = 0; v < 2; ++v) {
      const auto n = static_cast<std::int64_t>(pred_pool[v].size());
      train::VariableReport vr;
      vr.variable = names[v];
      vr.report = metrics::evaluate_field(
          Tensor::from_vector(Shape{n}, pred_pool[v]),
          Tensor::from_vector(Shape{n}, truth_pool[v]));
      vr.report.ssim = ssim_sum[v] / static_cast<double>(eval_indices.size());
      baseline.reports.push_back(vr);
    }
    rows.push_back(std::move(baseline));
  }

  for (int capacity : {0, 1}) {
    const model::ModelConfig conf =
        bench::bench_model_config(capacity, in_ch, out_ch);
    auto model = bench::train_reslim(conf, dataset, train_n, epochs, 42);
    rows.push_back({conf.name, train::evaluate_model(*model, dataset, eval_indices),
                    model->parameter_count()});
  }

  const char* paper_rows[3][2] = {
      {"[reference: plain interpolation, no learning]",
       "[reference: plain interpolation, no learning]"},
      {"[paper 9.5M tmin: R2 .991 RMSE 3.81 SSIM .958 PSNR 29.0]",
       "[paper 9.5M prcp: R2 .975 RMSE .146 SSIM .931 PSNR 29.0]"},
      {"[paper 126M tmin: R2 .999 RMSE 0.51 SSIM .987 PSNR 46.0]",
       "[paper 126M prcp: R2 .979 RMSE .135 SSIM .932 PSNR 30.2]"},
  };

  std::printf("%-22s %-6s %7s %8s %8s %8s %8s %7s %7s\n", "Model", "Var",
              "R2", "RMSE", "RMSEs1", "RMSEs2", "RMSEs3", "SSIM", "PSNR");
  bench::print_rule();
  for (std::size_t m = 0; m < rows.size(); ++m) {
    for (std::size_t v = 0; v < rows[m].reports.size(); ++v) {
      const auto& vr = rows[m].reports[v];
      std::printf("%-22s %-6s %7.4f %8.4f %8.4f %8.4f %8.4f %7.3f %7.2f\n",
                  rows[m].model_name.c_str(), vr.variable.c_str(),
                  vr.report.r2, vr.report.rmse, vr.report.rmse_sigma1,
                  vr.report.rmse_sigma2, vr.report.rmse_sigma3,
                  vr.report.ssim, vr.report.psnr);
      std::printf("    %s\n", paper_rows[m][v]);
    }
    std::printf("    (parameters: %lld)\n",
                static_cast<long long>(rows[m].params));
  }
  std::printf(
      "\nShape check: both trained models match the interpolation baseline "
      "on bulk R2\nand beat it decisively on the extreme-quantile RMSEs "
      "(sigma1/2/3) — the regime\nthe paper emphasizes for extremes. "
      "Precipitation (log space) scores far below\ntemperature, as in the "
      "paper. At bench scale the held-out bulk ceiling is\n"
      "information-limited (fine-scale detail is absent from the coarsened "
      "inputs), so\nthe capacity ordering appears on training loss — "
      "enforced by the Capacity\nintegration test — rather than held-out "
      "R2.\n");
  return 0;
}
