#pragma once
// Shared helpers for the per-table/figure benchmark harnesses.
//
// Every bench binary prints (a) the paper's reported numbers and (b) this
// reproduction's measured or simulated numbers, side by side, in plain
// fixed-width tables so EXPERIMENTS.md can quote them directly. Benches are
// scaled to CPU budgets: real trainings run at reduced grid/width with the
// same topology, and Frontier-scale results come from orbit2::hwsim.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "model/reslim.hpp"
#include "model/vit_baseline.hpp"
#include "train/evaluate.hpp"
#include "train/trainer.hpp"

namespace orbit2::bench {

/// US-regional DAYMET-analogue dataset at bench scale: fixed terrain,
/// 4x downscaling, tmin + prcp outputs, a handful of input variables.
inline data::DatasetConfig us_dataset_config(std::uint64_t seed,
                                             std::int64_t hr_h = 64,
                                             std::int64_t hr_w = 128) {
  data::DatasetConfig config;
  config.hr_h = hr_h;
  config.hr_w = hr_w;
  config.upscale = 4;
  config.seed = seed;
  config.fixed_region = true;
  // 8 inputs: the 5 static fields + t850 + t2m + total_precipitation.
  const auto& full = data::era5_input_variables();
  config.input_variables.assign(full.begin(), full.begin() + 5);
  config.input_variables.push_back(
      full[data::variable_index(full, "t850")]);
  config.input_variables.push_back(full[data::variable_index(full, "t2m")]);
  config.input_variables.push_back(
      full[data::variable_index(full, "total_precipitation")]);
  // Outputs: tmin + prcp (the two Table IV variables).
  const auto& outs = data::daymet_output_variables();
  config.output_variables = {outs[0], outs[2]};
  return config;
}

/// Bench-scale analogue of a paper model preset: same topology family,
/// reduced width/depth. `capacity` 0 = "9.5M-analogue", 1 = "126M-analogue".
inline model::ModelConfig bench_model_config(int capacity,
                                             std::int64_t in_channels,
                                             std::int64_t out_channels) {
  model::ModelConfig config = model::preset_tiny();
  if (capacity != 0) {
    // Larger-capacity analogue, sized so the capacity gap shows within CPU
    // training budgets (the d=96 preset_small converges too slowly to
    // overtake within a bench run).
    config.embed_dim = 64;
    config.layers = 3;
    config.heads = 4;
  }
  config.name = capacity == 0 ? "9.5M-analogue(tiny)" : "126M-analogue(d64)";
  config.in_channels = in_channels;
  config.out_channels = out_channels;
  config.upscale = 4;
  return config;
}

/// Trains a Reslim on the dataset; returns the model.
inline std::unique_ptr<model::ReslimModel> train_reslim(
    const model::ModelConfig& config, const data::SyntheticDataset& dataset,
    std::int64_t train_samples, std::int64_t epochs, std::uint64_t seed) {
  Rng rng(seed);
  auto model = std::make_unique<model::ReslimModel>(config, rng);
  train::TrainerConfig tconf;
  tconf.epochs = epochs;
  tconf.batch_size = 2;
  tconf.lr = 2e-3f;
  train::Trainer trainer(*model, tconf);
  std::vector<std::int64_t> indices(static_cast<std::size_t>(train_samples));
  for (std::int64_t i = 0; i < train_samples; ++i) indices[static_cast<std::size_t>(i)] = i;
  trainer.fit(dataset, indices);
  return model;
}

inline std::vector<std::int64_t> index_range(std::int64_t count,
                                             std::int64_t offset = 0) {
  std::vector<std::int64_t> out(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) out[static_cast<std::size_t>(i)] = offset + i;
  return out;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace orbit2::bench
