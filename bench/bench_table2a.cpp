// Table II(a): Reslim architecture speedup vs the upsample-first ViT.
//
// Two layers of evidence:
//  1. Real CPU measurement at bench scale: identical tiny configs, same
//     task, wall-clock time per training sample for ViT-baseline vs Reslim,
//     plus PSNR/SSIM after a short training run of each.
//  2. hwsim projection at the paper's scale (9.5M model, 128 GPUs,
//     622->156 km and 112->28 km tasks), including the ViT OOM row.
//
// Paper reference rows (Table IIa):
//   ViT    9.5M 622->156  seq 24,576   7.3e-4 s/sample   PSNR 35.0 SSIM 0.94
//   Reslim 9.5M 622->156  seq 24,576   1.1e-6 s/sample   660x  PSNR 36.7 SSIM 0.96
//   ViT    9.5M 112->28   seq 777,660  OOM
//   Reslim 9.5M 112->28   seq 777,660  1.2e-3 s/sample   PSNR 37.6 SSIM 0.96

#include "bench/common.hpp"
#include "core/timer.hpp"
#include "hwsim/parallelism.hpp"
#include "hwsim/perf_model.hpp"
#include "metrics/metrics.hpp"

namespace orbit2 {
namespace {

struct ArchResult {
  double seconds_per_sample = 0.0;
  double psnr = 0.0;
  double ssim = 0.0;
};

/// Trains under a fixed wall-clock budget (the fair basis for a
/// speed/accuracy ablation: at equal time the faster architecture sees
/// proportionally more data, which is exactly the Reslim value
/// proposition) and measures per-sample training time + accuracy.
template <typename Model>
ArchResult measure_arch(Model& model, const data::SyntheticDataset& dataset,
                        std::int64_t train_samples, double budget_seconds) {
  train::TrainerConfig tconf;
  tconf.epochs = 1;
  tconf.batch_size = 2;
  tconf.lr = 2e-3f;
  tconf.bayesian_loss =
      model.model_config().architecture == model::Architecture::kReslim;
  train::Trainer trainer(model, tconf);
  const auto indices = bench::index_range(train_samples);
  train::EpochStats last{};
  WallTimer budget;
  std::int64_t epochs_run = 0;
  do {
    last = trainer.train_epoch(dataset, indices);
    ++epochs_run;
  } while (budget.seconds() + last.seconds < budget_seconds);
  std::printf("  (%lld epochs within the %.0fs budget)\n",
              static_cast<long long>(epochs_run), budget_seconds);

  // Accuracy on held-out samples, physical units, first (temperature) var.
  const auto eval = bench::index_range(2, train_samples);
  double psnr_sum = 0.0, ssim_sum = 0.0;
  for (std::int64_t index : eval) {
    const data::Sample physical = dataset.sample_physical(index);
    Tensor pred = train::predict_physical(model, dataset, index);
    const std::int64_t h = pred.dim(1), w = pred.dim(2);
    const Tensor pf = pred.slice(0, 0, 1).reshape(Shape{h, w});
    const Tensor tf = physical.target.slice(0, 0, 1).reshape(Shape{h, w});
    psnr_sum += metrics::psnr(pf, tf);
    ssim_sum += metrics::ssim(pf, tf);
  }
  return {last.seconds_per_sample(), psnr_sum / eval.size(),
          ssim_sum / eval.size()};
}

void print_hwsim_projection() {
  using namespace hwsim;
  FrontierTopology topo;
  bench::print_header(
      "Table II(a) — hwsim projection at paper scale (9.5M, 128 GPUs)");
  std::printf("%-8s %-10s %12s %9s %14s %8s %s\n", "Arch", "Task", "SeqLen",
              "Fits?", "t/sample (s)", "Speedup", "[paper]");
  bench::print_rule();

  struct Row {
    const char* arch;
    model::Architecture architecture;
    const char* task;
    std::int64_t lr_h, lr_w;
    const char* paper;
  };
  const Row rows[] = {
      {"ViT", model::Architecture::kViTBaseline, "622->156", 32, 64,
       "7.3e-4 s, PSNR 35.0"},
      {"Reslim", model::Architecture::kReslim, "622->156", 32, 64,
       "1.1e-6 s, 660x, PSNR 36.7"},
      {"ViT", model::Architecture::kViTBaseline, "112->28", 180, 360,
       "OOM"},
      {"Reslim", model::Architecture::kReslim, "112->28", 180, 360,
       "1.2e-3 s, PSNR 37.6"},
  };

  double vit_small_time = 0.0;
  for (const Row& row : rows) {
    WorkloadSpec spec;
    spec.config = model::preset_9_5m();
    spec.config.architecture = row.architecture;
    spec.lr_h = row.lr_h;
    spec.lr_w = row.lr_w;

    ParallelismPlan plan;
    if (row.architecture == model::Architecture::kViTBaseline) {
      plan.total_gpus = 128;
      plan.ddp = 128;  // standard ViT: DDP only
    } else {
      plan = plan_parallelism(spec.config, 128, 1);
    }
    const FitResult fit = check_fits(spec, plan, topo);
    const std::int64_t seq = model::sequence_length(spec.config, row.lr_h,
                                                    row.lr_w);
    if (!fit.fits) {
      std::printf("%-8s %-10s %12lld %9s %14s %8s [%s]\n", row.arch, row.task,
                  static_cast<long long>(seq), "OOM", "-", "-", row.paper);
      continue;
    }
    const StepTimeBreakdown step = estimate_step(spec, plan, topo);
    double speedup = 0.0;
    if (row.architecture == model::Architecture::kViTBaseline) {
      vit_small_time = step.per_sample_seconds;
    } else if (vit_small_time > 0.0) {
      speedup = vit_small_time / step.per_sample_seconds;
    }
    std::printf("%-8s %-10s %12lld %9s %14.3e %8s [%s]\n", row.arch, row.task,
                static_cast<long long>(seq), "yes", step.per_sample_seconds,
                speedup > 0 ? (std::to_string(speedup).substr(0, 5) + "x").c_str()
                            : "-",
                row.paper);
    if (row.architecture == model::Architecture::kViTBaseline) {
      vit_small_time = step.per_sample_seconds;
    } else {
      vit_small_time = 0.0;
    }
  }
}

}  // namespace
}  // namespace orbit2

int main() {
  using namespace orbit2;
  bench::print_header(
      "Table II(a) — real CPU measurement at bench scale (same topology, "
      "reduced width)");

  const data::DatasetConfig dconfig = bench::us_dataset_config(101, 32, 64);
  data::SyntheticDataset dataset(dconfig);
  const auto in_ch = static_cast<std::int64_t>(dconfig.input_variables.size());
  const auto out_ch = static_cast<std::int64_t>(dconfig.output_variables.size());

  model::ModelConfig reslim_conf = bench::bench_model_config(0, in_ch, out_ch);
  model::ModelConfig vit_conf = reslim_conf;
  vit_conf.architecture = model::Architecture::kViTBaseline;

  Rng rng_v(1);
  model::ViTBaselineModel vit(vit_conf, rng_v);
  Rng rng_r(1);
  model::ReslimModel reslim(reslim_conf, rng_r);

  const auto vit_result = measure_arch(vit, dataset, 8, 8.0);
  const auto reslim_result = measure_arch(reslim, dataset, 8, 8.0);

  std::printf("%-8s %14s %10s %8s %8s\n", "Arch", "t/sample (s)", "Speedup",
              "PSNR", "SSIM");
  bench::print_rule();
  std::printf("%-8s %14.4e %10s %8.2f %8.3f\n", "ViT",
              vit_result.seconds_per_sample, "1x", vit_result.psnr,
              vit_result.ssim);
  std::printf("%-8s %14.4e %9.1fx %8.2f %8.3f\n", "Reslim",
              reslim_result.seconds_per_sample,
              vit_result.seconds_per_sample / reslim_result.seconds_per_sample,
              reslim_result.psnr, reslim_result.ssim);
  std::printf(
      "\nShape check: Reslim is faster per sample at equal-or-better "
      "PSNR/SSIM.\n(Paper: 660x at 128 GPUs; the CPU ratio is smaller because "
      "the bench\ngrid keeps the ViT sequence short enough to run at all.)\n");

  print_hwsim_projection();
  return 0;
}
