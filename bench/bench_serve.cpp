// Serving benchmark: dynamic batching on compiled plans under synthetic load.
//
// Phase 1 (throughput): a burst of identical tile-size requests is drained
// through the service at max_batch in {1, 2, 4, 8}. Batching wins come from
// sample-parallel replay (one batch item per kernel chunk), so the speedup
// over max_batch=1 approaches the kernel thread count.
//
// Phase 2 (latency): open-loop Poisson arrivals (mixed profiles, seeded
// schedule) against the threaded service on the wall clock. The arrival rate
// is self-calibrated to ~60% of measured single-stream capacity, and the
// phase reports p50/p99/p999 latency, throughput, shed/reject counts, and
// the batch-size histogram.
//
// Usage: bench_serve [--quick] [--trace PATH] [--requests N]
//   --quick      smaller burst + shorter Poisson phase (CI smoke runs)
//   --trace PATH enable obs tracing; writes Chrome trace JSON with wall
//                spans (serve/enqueue, serve/batch) plus one simulated-time
//                span per request of a deterministic sim-clock replay
//   --requests N burst size for the throughput phase
//
// Human-readable tables go to stderr; stdout carries a single JSON object.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/kernels.hpp"
#include "core/obs.hpp"
#include "model/reslim.hpp"
#include "serve/loadgen.hpp"
#include "serve/service.hpp"

#include "bench/common.hpp"

namespace orbit2::bench {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ThroughputPoint {
  std::int64_t max_batch = 0;
  std::size_t requests = 0;
  double seconds = 0.0;
  double req_per_s = 0.0;
  double speedup_vs_b1 = 0.0;
  std::map<std::int64_t, std::int64_t> batch_hist;  // size -> batch count
};

/// Drains `count` identical requests through a manual-mode service at one
/// max_batch setting, timing the flush (admission is not the bottleneck).
/// Best-of-`reps` makespan, mirroring bench_infer: the box is shared, and a
/// single 0.2s window is hostage to steal/frequency noise.
ThroughputPoint throughput_point(const model::Downscaler& model,
                                 const Tensor& input, std::size_t count,
                                 std::int64_t max_batch, int reps) {
  serve::ServiceConfig sc;
  sc.manual = true;
  sc.queue_capacity = count;
  sc.max_batch = max_batch;
  sc.max_wait_us = 1'000'000;
  serve::SimClock clock;
  serve::Service service(sc, &clock);
  service.warm(model, input, static_cast<std::size_t>(max_batch));

  std::deque<serve::Request> requests(count);
  for (serve::Request& request : requests) {
    request.model = &model;
    request.input = input;
  }
  // Warm one cycle so output buffers and staging scratch are sized.
  service.submit(&requests[0]);
  service.flush();
  requests[0].rearm();

  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    for (serve::Request& request : requests) service.submit(&request);
    const double t0 = now_seconds();
    service.flush();
    const double t1 = now_seconds();
    if (rep == 0 || t1 - t0 < best) best = t1 - t0;
    if (rep + 1 < reps) {
      for (serve::Request& request : requests) request.rearm();
    }
  }

  ThroughputPoint point;
  point.max_batch = max_batch;
  point.requests = count;
  point.seconds = best;
  point.req_per_s = static_cast<double>(count) / point.seconds;
  for (const serve::Request& request : requests) {
    point.batch_hist[request.batch_size] += 1;
  }
  for (auto& [size, n] : point.batch_hist) n /= size;  // requests -> batches
  return point;
}

struct LatencyReport {
  double rate_hz = 0.0;
  std::size_t scheduled = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t shed = 0;
  std::int64_t completed = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  std::map<std::int64_t, std::int64_t> batch_hist;
};

double percentile_ms(std::vector<std::int64_t>& latencies, double q) {
  if (latencies.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(latencies.size() - 1) + 0.5);
  std::nth_element(latencies.begin(),
                   latencies.begin() + static_cast<std::ptrdiff_t>(idx),
                   latencies.end());
  return static_cast<double>(latencies[idx]) / 1e6;
}

/// Open-loop Poisson phase on the wall clock against a threaded service.
LatencyReport latency_phase(const std::vector<serve::LoadProfile>& profiles,
                            double rate_hz, std::size_t count,
                            std::uint64_t seed) {
  serve::LoadGenConfig gen;
  gen.rate_hz = rate_hz;
  gen.count = count;
  gen.seed = seed;
  const std::vector<serve::Arrival> schedule =
      serve::poisson_schedule(gen, profiles);

  serve::ServiceConfig sc;
  sc.queue_capacity = 256;
  sc.max_batch = 8;
  sc.max_wait_us = 500;
  sc.default_deadline_us = 200'000;  // generous: sheds signal true overload
  serve::Service service(sc);
  for (const serve::LoadProfile& profile : profiles) {
    service.warm(*profile.model, serve::profile_input(profile, 1),
                 static_cast<std::size_t>(sc.max_batch));
  }

  std::deque<serve::Request> requests(schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    requests[i].model = profiles[schedule[i].profile].model;
    requests[i].input =
        serve::profile_input(profiles[schedule[i].profile],
                             schedule[i].input_seed);
  }

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::nanoseconds(schedule[i].t_ns));
    service.submit(&requests[i]);
  }
  for (serve::Request& request : requests) request.wait();
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  service.stop();

  LatencyReport report;
  report.rate_hz = rate_hz;
  report.scheduled = schedule.size();
  const serve::Service::Stats stats = service.stats();
  report.accepted = stats.accepted;
  report.rejected = stats.rejected;
  report.shed = stats.shed;
  report.completed = stats.completed;
  report.seconds = seconds;
  report.throughput_rps = static_cast<double>(stats.completed) / seconds;
  std::vector<std::int64_t> latencies;
  for (const serve::Request& request : requests) {
    if (request.status() != serve::RequestStatus::kOk) continue;
    latencies.push_back(request.latency_ns());
    report.batch_hist[request.batch_size] += 1;
  }
  for (auto& [size, n] : report.batch_hist) n /= size;
  report.p50_ms = percentile_ms(latencies, 0.50);
  report.p99_ms = percentile_ms(latencies, 0.99);
  report.p999_ms = percentile_ms(latencies, 0.999);
  return report;
}

/// Deterministic sim-clock replay with tracing on: wall spans cover the
/// actual batch dispatches, and each request additionally lands on the
/// simulated-time track as a [enqueue, done) sim span.
void traced_sim_replay(const std::vector<serve::LoadProfile>& profiles,
                       const std::string& trace_path) {
  obs::set_enabled(true);
  serve::LoadGenConfig gen;
  gen.rate_hz = 40'000.0;
  gen.count = 64;
  gen.seed = 0xbe7c5eed;
  const std::vector<serve::Arrival> schedule =
      serve::poisson_schedule(gen, profiles);

  serve::ServiceConfig sc;
  sc.manual = true;
  sc.queue_capacity = 128;
  sc.max_batch = 4;
  sc.max_wait_us = 100;
  sc.default_deadline_us = 60;
  serve::SimClock clock;
  serve::Service service(sc, &clock);
  std::deque<serve::Request> storage;
  const serve::ReplayResult result =
      serve::replay_on_sim_clock(service, clock, profiles, schedule, storage);

  for (const serve::Request& request : storage) {
    if (request.status() != serve::RequestStatus::kOk) continue;
    obs::sim_span("serve/request", "serve",
                  static_cast<double>(request.enqueue_ns) / 1e9,
                  static_cast<double>(request.latency_ns()) / 1e9);
  }
  obs::write_chrome_trace(trace_path);
  obs::set_enabled(false);
  std::fprintf(stderr,
               "trace written to %s (replay: %zu batches, statuses %s)\n",
               trace_path.c_str(), result.batches, result.statuses.c_str());
}

std::string hist_json(const std::map<std::int64_t, std::int64_t>& hist) {
  std::string out = "{";
  bool first = true;
  for (const auto& [size, batches] : hist) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + std::to_string(size) + "\": " + std::to_string(batches);
  }
  return out + "}";
}

}  // namespace
}  // namespace orbit2::bench

int main(int argc, char** argv) {
  using namespace orbit2;
  bool quick = false;
  std::string trace_path;
  std::size_t burst = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      burst = static_cast<std::size_t>(std::max(1, std::atoi(argv[++i])));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--trace PATH] [--requests N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (burst == 0) burst = quick ? 64 : 256;

  const std::int64_t in_channels = 8, out_channels = 2;
  Rng rng(42);
  model::ReslimModel model(
      bench::bench_model_config(0, in_channels, out_channels), rng);
  const serve::LoadProfile tile = {&model, "tile16", in_channels, 16, 16,
                                   3.0};
  const serve::LoadProfile wide = {&model, "tile16x32", in_channels, 16, 32,
                                   1.0};
  const std::vector<serve::LoadProfile> profiles = {tile, wide};

  // ---- Phase 1: burst throughput vs max_batch -----------------------------
  const Tensor tile_input = serve::profile_input(tile, 7);
  const int reps = quick ? 3 : 5;
  std::vector<bench::ThroughputPoint> sweep;
  for (const std::int64_t max_batch : {1, 2, 4, 8}) {
    sweep.push_back(
        bench::throughput_point(model, tile_input, burst, max_batch, reps));
    bench::ThroughputPoint& point = sweep.back();
    point.speedup_vs_b1 = point.req_per_s / sweep.front().req_per_s;
    std::fprintf(stderr,
                 "throughput  max_batch=%lld  %zu reqs in %7.3f s  "
                 "%8.1f req/s  speedup %.2fx\n",
                 static_cast<long long>(point.max_batch), point.requests,
                 point.seconds, point.req_per_s, point.speedup_vs_b1);
  }

  // ---- Phase 2: open-loop Poisson latency ---------------------------------
  // Self-calibrate the arrival rate to ~60% of single-stream capacity so the
  // phase measures queueing + batching, not pure overload.
  const double single_stream_rps = sweep.front().req_per_s;
  const double rate_hz = 0.6 * single_stream_rps * 4.0;  // batching headroom
  const std::size_t count = quick ? 200 : 2000;
  const bench::LatencyReport latency =
      bench::latency_phase(profiles, rate_hz, count, 0x10adu);
  std::fprintf(stderr,
               "latency  rate %.0f req/s  completed %lld/%zu (shed %lld, "
               "rejected %lld)  p50 %.2f ms  p99 %.2f ms  p99.9 %.2f ms  "
               "throughput %.1f req/s\n",
               latency.rate_hz, static_cast<long long>(latency.completed),
               latency.scheduled, static_cast<long long>(latency.shed),
               static_cast<long long>(latency.rejected), latency.p50_ms,
               latency.p99_ms, latency.p999_ms, latency.throughput_rps);

  // ---- Optional traced sim replay -----------------------------------------
  if (!trace_path.empty()) bench::traced_sim_replay(profiles, trace_path);

  // ---- JSON ----------------------------------------------------------------
  std::printf("{\n  \"throughput\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const bench::ThroughputPoint& point = sweep[i];
    std::printf(
        "    {\"max_batch\": %lld, \"requests\": %zu, \"seconds\": %.6f, "
        "\"req_per_s\": %.2f, \"speedup_vs_b1\": %.3f, \"batch_hist\": %s}%s\n",
        static_cast<long long>(point.max_batch), point.requests, point.seconds,
        point.req_per_s, point.speedup_vs_b1,
        bench::hist_json(point.batch_hist).c_str(),
        i + 1 < sweep.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf(
      "  \"latency\": {\"rate_hz\": %.2f, \"scheduled\": %zu, "
      "\"accepted\": %lld, \"rejected\": %lld, \"shed\": %lld, "
      "\"completed\": %lld, \"seconds\": %.6f, \"throughput_rps\": %.2f, "
      "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"p999_ms\": %.4f, "
      "\"batch_hist\": %s}\n",
      latency.rate_hz, latency.scheduled,
      static_cast<long long>(latency.accepted),
      static_cast<long long>(latency.rejected),
      static_cast<long long>(latency.shed),
      static_cast<long long>(latency.completed), latency.seconds,
      latency.throughput_rps, latency.p50_ms, latency.p99_ms, latency.p999_ms,
      bench::hist_json(latency.batch_hist).c_str());
  std::printf("}\n");
  return 0;
}
