// Kernel-level microbenchmarks (google-benchmark): the performance claims
// underneath the paper tables — blocked matmul, flash vs naive attention
// across sequence lengths (the O(N^2) -> O(N) memory story), conv2d,
// Canny + quad-tree partitioning overhead, FFT, and the GRF generator.

#include <benchmark/benchmark.h>

#include "attention/attention.hpp"
#include "attention/window_attention.hpp"
#include "hwsim/sequence_parallel.hpp"
#include "core/rng.hpp"
#include "data/generator.hpp"
#include "fft/fft.hpp"
#include "image/filters.hpp"
#include "quadtree/quadtree.hpp"
#include "tensor/conv.hpp"
#include "tensor/matmul.hpp"

namespace orbit2 {
namespace {

void BM_MatmulBlocked(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulBlocked)->Arg(64)->Arg(128)->Arg(256);

void BM_AttentionNaive(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(2);
  Tensor q = Tensor::randn(Shape{n, 32}, rng);
  Tensor k = Tensor::randn(Shape{n, 32}, rng);
  Tensor v = Tensor::randn(Shape{n, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attention_naive_forward(q, k, v, 0.17f, nullptr));
  }
}
BENCHMARK(BM_AttentionNaive)->Arg(128)->Arg(512)->Arg(2048);

void BM_AttentionFlash(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(3);
  Tensor q = Tensor::randn(Shape{n, 32}, rng);
  Tensor k = Tensor::randn(Shape{n, 32}, rng);
  Tensor v = Tensor::randn(Shape{n, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attention_flash_forward(q, k, v, 0.17f, nullptr));
  }
}
BENCHMARK(BM_AttentionFlash)->Arg(128)->Arg(512)->Arg(2048);

void BM_Conv2d3x3(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(4);
  Tensor x = Tensor::randn(Shape{8, n, n}, rng);
  Tensor w = Tensor::randn(Shape{8, 8, 3, 3}, rng, 0.1f);
  Tensor b = Tensor::zeros(Shape{8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d_forward(x, w, b, {3, 3, 1, 1}));
  }
}
BENCHMARK(BM_Conv2d3x3)->Arg(32)->Arg(64)->Arg(128);

void BM_CannyPlusQuadtree(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(5);
  Tensor field = gaussian_blur(
      Tensor::uniform(Shape{n, n}, rng, 0.0f, 1.0f), 1.0f);
  for (auto _ : state) {
    Tensor edges = canny(field);
    benchmark::DoNotOptimize(partition_with_target_ratio(edges, 8.0f));
  }
}
BENCHMARK(BM_CannyPlusQuadtree)->Arg(64)->Arg(128)->Arg(256);

void BM_Fft2d(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(6);
  Tensor field = Tensor::randn(Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(radial_power_spectrum(field));
  }
}
BENCHMARK(BM_Fft2d)->Arg(64)->Arg(128)->Arg(256);

void BM_GaussianRandomField(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        data::gaussian_random_field(n, n, 3.0f, rng));
  }
}
BENCHMARK(BM_GaussianRandomField)->Arg(64)->Arg(128);

void BM_QuadtreePoolScatter(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(8);
  Tensor edges = Tensor::uniform(Shape{n, n}, rng, 0.0f, 1.0f)
                     .map([](float v) { return v > 0.85f ? 1.0f : 0.0f; });
  const auto leaves = partition_with_target_ratio(edges, 8.0f);
  Tensor tokens = Tensor::randn(Shape{n * n, 32}, rng);
  for (auto _ : state) {
    Tensor pooled = pool_tokens(tokens, n, n, leaves);
    benchmark::DoNotOptimize(scatter_tokens(pooled, n, n, leaves));
  }
}
BENCHMARK(BM_QuadtreePoolScatter)->Arg(32)->Arg(64);

void BM_WindowAttention(benchmark::State& state) {
  const auto side = state.range(0);
  Rng rng(9);
  Tensor q = Tensor::randn(Shape{side * side, 32}, rng);
  WindowAttentionSpec spec{side, side, 8, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(window_attention_forward(q, q, q, 0.18f, spec));
  }
}
BENCHMARK(BM_WindowAttention)->Arg(16)->Arg(32)->Arg(64);

void BM_RingAttention(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(10);
  Tensor q = Tensor::randn(Shape{n, 32}, rng);
  for (auto _ : state) {
    hwsim::CommStats stats;
    benchmark::DoNotOptimize(
        hwsim::ring_attention(q, q, q, 0.18f, 4, stats));
  }
}
BENCHMARK(BM_RingAttention)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace orbit2

BENCHMARK_MAIN();
