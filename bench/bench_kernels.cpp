// Kernel-layer microbenchmarks: legacy serial reference kernels vs the
// unified parallel kernel layer (core/kernels.hpp), at 1 thread and at the
// requested thread count. Emits a JSON array on stdout so EXPERIMENTS.md and
// CI can diff runs mechanically.
//
// The "legacy" variants are the pre-kernel-layer implementations, kept here
// verbatim as a fixed baseline: float-accumulator blocked NN GEMM with the
// zero-skip branch, double-accumulator NT row dots, rank-1 TN updates with
// zero-skip, the serial direct conv2d forward, and the serial online-softmax
// flash forward. They are intentionally NOT the library kernels, so this
// harness keeps measuring the same baseline even as the library evolves.
//
// Usage: bench_kernels [--reps N] [--threads N] [--quick] [--trace PATH]
//   --reps N     timing repetitions per case, best-of (default 3)
//   --threads N  thread count for the parallel "kernels" variant (default 4)
//   --quick      drop the largest GEMM/attention shapes (CI smoke runs)
//   --trace PATH enable obs tracing and write Chrome trace JSON to PATH

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "attention/attention.hpp"
#include "core/kernels.hpp"
#include "core/obs.hpp"
#include "core/rng.hpp"
#include "core/simd/simd.hpp"
#include "tensor/conv.hpp"
#include "tensor/matmul.hpp"
#include "tensor/tensor.hpp"

namespace {

using orbit2::Conv2dSpec;
using orbit2::FlashParams;
using orbit2::Rng;
using orbit2::Shape;
using orbit2::Tensor;

// ---------------------------------------------------------------------------
// Legacy serial reference kernels (pre-kernel-layer implementations).
// ---------------------------------------------------------------------------

constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 64;
constexpr std::int64_t kBlockK = 64;

// out(M,N) += a(M,K) * b(K,N): blocked, float accumulator, zero-skip.
void legacy_gemm_nn(float* out, const float* a, const float* b, std::int64_t m,
                    std::int64_t n, std::int64_t k) {
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::int64_t i1 = std::min(m, i0 + kBlockM);
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::int64_t k1 = std::min(k, k0 + kBlockK);
      for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::int64_t j1 = std::min(n, j0 + kBlockN);
        for (std::int64_t i = i0; i < i1; ++i) {
          for (std::int64_t kk = k0; kk < k1; ++kk) {
            const float aik = a[i * k + kk];
            if (aik == 0.0f) continue;
            const float* brow = b + kk * n;
            float* orow = out + i * n;
            for (std::int64_t j = j0; j < j1; ++j) orow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

// out(M,N) = a(M,K) * b(N,K)^T: row-dot products, double accumulator.
void legacy_gemm_nt(float* out, const float* a, const float* b, std::int64_t m,
                    std::int64_t n, std::int64_t k) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const float* ra = a + i * k;
      const float* rb = b + j * k;
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(ra[kk]) * rb[kk];
      }
      out[i * n + j] = static_cast<float>(acc);
    }
  }
}

// out(M,N) += a(K,M)^T * b(K,N): rank-1 updates, zero-skip.
void legacy_gemm_tn(float* out, const float* a, const float* b, std::int64_t m,
                    std::int64_t n, std::int64_t k) {
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* ra = a + kk * m;
    const float* rb = b + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = ra[i];
      if (av == 0.0f) continue;
      float* ro = out + i * n;
      for (std::int64_t j = 0; j < n; ++j) ro[j] += av * rb[j];
    }
  }
}

// Serial direct conv2d forward, [C,H,W] x [O,C,kh,kw].
Tensor legacy_conv2d_forward(const Tensor& input, const Tensor& weight,
                             const Tensor& bias, const Conv2dSpec& spec) {
  const std::int64_t cin = input.dim(0), h = input.dim(1), w = input.dim(2);
  const std::int64_t cout = weight.dim(0);
  const std::int64_t oh =
      orbit2::conv2d_out_dim(h, spec.kernel_h, spec.stride, spec.pad);
  const std::int64_t ow =
      orbit2::conv2d_out_dim(w, spec.kernel_w, spec.stride, spec.pad);
  Tensor out = Tensor::zeros(Shape{cout, oh, ow});
  const float* in = input.data().data();
  const float* wt = weight.data().data();
  float* po = out.data().data();
  for (std::int64_t oc = 0; oc < cout; ++oc) {
    const float b = bias[oc];
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        double acc = b;
        const std::int64_t iy0 = oy * spec.stride - spec.pad;
        const std::int64_t ix0 = ox * spec.stride - spec.pad;
        for (std::int64_t ic = 0; ic < cin; ++ic) {
          const float* in_c = in + ic * h * w;
          const float* wt_c =
              wt + ((oc * cin + ic) * spec.kernel_h) * spec.kernel_w;
          for (std::int64_t ky = 0; ky < spec.kernel_h; ++ky) {
            const std::int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < spec.kernel_w; ++kx) {
              const std::int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= w) continue;
              acc += static_cast<double>(in_c[iy * w + ix]) *
                     wt_c[ky * spec.kernel_w + kx];
            }
          }
        }
        po[(oc * oh + oy) * ow + ox] = static_cast<float>(acc);
      }
    }
  }
  return out;
}

// Serial online-softmax flash forward (pre-kernel-layer implementation).
Tensor legacy_flash_forward(const Tensor& q, const Tensor& k, const Tensor& v,
                            float scale, const FlashParams& params) {
  const std::int64_t nq = q.dim(0), nk = k.dim(0);
  const std::int64_t d = q.dim(1), dv = v.dim(1);
  Tensor output = Tensor::zeros(Shape{nq, dv});
  const float* pq = q.data().data();
  const float* pk = k.data().data();
  const float* pv = v.data().data();
  float* po = output.data().data();
  std::vector<float> row_max(static_cast<std::size_t>(nq),
                             -std::numeric_limits<float>::infinity());
  std::vector<float> row_sum(static_cast<std::size_t>(nq), 0.0f);
  std::vector<float> scores(
      static_cast<std::size_t>(params.block_q * params.block_kv));
  for (std::int64_t q0 = 0; q0 < nq; q0 += params.block_q) {
    const std::int64_t q1 = std::min(nq, q0 + params.block_q);
    for (std::int64_t k0 = 0; k0 < nk; k0 += params.block_kv) {
      const std::int64_t k1 = std::min(nk, k0 + params.block_kv);
      const std::int64_t bk = k1 - k0;
      for (std::int64_t i = q0; i < q1; ++i) {
        const float* qrow = pq + i * d;
        float* srow = scores.data() + (i - q0) * params.block_kv;
        for (std::int64_t j = 0; j < bk; ++j) {
          const float* krow = pk + (k0 + j) * d;
          double acc = 0.0;
          for (std::int64_t t = 0; t < d; ++t) {
            acc += static_cast<double>(qrow[t]) * krow[t];
          }
          srow[j] = static_cast<float>(acc) * scale;
        }
      }
      for (std::int64_t i = q0; i < q1; ++i) {
        float* srow = scores.data() + (i - q0) * params.block_kv;
        float block_max = srow[0];
        for (std::int64_t j = 1; j < bk; ++j) {
          block_max = std::max(block_max, srow[j]);
        }
        const float old_max = row_max[static_cast<std::size_t>(i)];
        const float new_max = std::max(old_max, block_max);
        const float correction =
            (old_max == -std::numeric_limits<float>::infinity())
                ? 0.0f
                : std::exp(old_max - new_max);
        float* orow = po + i * dv;
        for (std::int64_t t = 0; t < dv; ++t) orow[t] *= correction;
        row_sum[static_cast<std::size_t>(i)] *= correction;
        for (std::int64_t j = 0; j < bk; ++j) {
          const float p = std::exp(srow[j] - new_max);
          row_sum[static_cast<std::size_t>(i)] += p;
          const float* vrow = pv + (k0 + j) * dv;
          for (std::int64_t t = 0; t < dv; ++t) orow[t] += p * vrow[t];
        }
        row_max[static_cast<std::size_t>(i)] = new_max;
      }
    }
  }
  for (std::int64_t i = 0; i < nq; ++i) {
    const float inv = 1.0f / row_sum[static_cast<std::size_t>(i)];
    float* orow = po + i * dv;
    for (std::int64_t t = 0; t < dv; ++t) orow[t] *= inv;
  }
  return output;
}

// ---------------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------------

struct Record {
  std::string bench;    // e.g. "gemm_nn"
  std::string shape;    // e.g. "square:1024x1024x1024"
  std::string variant;  // "legacy_serial" or "kernels"
  std::size_t threads = 1;
  double seconds = 0.0;
  double gflops = 0.0;
  double checksum = 0.0;  // sum of output elements; sanity, not bit-exactness
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Best-of-`reps` wall time of fn(); fn returns a checksum so the work cannot
// be optimized away. Cases slower than a second stop after one rep to bound
// total harness runtime.
template <typename Fn>
Record time_case(const std::string& bench, const std::string& shape,
                 const std::string& variant, std::size_t threads, int reps,
                 double flops, Fn&& fn) {
  Record rec;
  rec.bench = bench;
  rec.shape = shape;
  rec.variant = variant;
  rec.threads = threads;
  rec.seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    rec.checksum = fn();
    const double t1 = now_seconds();
    rec.seconds = std::min(rec.seconds, t1 - t0);
    if (t1 - t0 > 1.0) break;
  }
  rec.gflops = rec.seconds > 0.0 ? flops / rec.seconds * 1e-9 : 0.0;
  return rec;
}

double tensor_checksum(const Tensor& t) {
  double acc = 0.0;
  for (const float v : t.data()) acc += static_cast<double>(v);
  return acc;
}

double buffer_checksum(const std::vector<float>& buf) {
  double acc = 0.0;
  for (const float v : buf) acc += static_cast<double>(v);
  return acc;
}

void emit_json(const std::vector<Record>& records) {
  std::printf("[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::printf(
        "  {\"bench\": \"%s\", \"shape\": \"%s\", \"variant\": \"%s\", "
        "\"threads\": %zu, \"seconds\": %.6f, \"gflops\": %.3f, "
        "\"checksum\": %.6g}%s\n",
        r.bench.c_str(), r.shape.c_str(), r.variant.c_str(), r.threads,
        r.seconds, r.gflops, r.checksum, i + 1 < records.size() ? "," : "");
  }
  std::printf("]\n");
}

struct GemmShape {
  const char* tag;  // provenance of the shape
  std::int64_t m, n, k;
};

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  std::size_t threads = 4;
  bool quick = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::max(1, std::atoi(argv[++i])));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--reps N] [--threads N] [--quick] "
                   "[--trace PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!trace_path.empty()) orbit2::obs::set_enabled(true);

  Rng rng(1234);
  std::vector<Record> records;
  const std::size_t kSerial = 1;

  // --- GEMM: square scaling points plus Reslim/ViT-shaped rectangles. ---
  std::vector<GemmShape> gemm_shapes = {
      {"square", 256, 256, 256},
      {"square", 512, 512, 512},
      {"vit_mlp", 1024, 1024, 256},         // tokens x hidden x embed
      {"reslim_proj", 4096, 128, 128},      // 64x64 token grid projection
      {"reslim_patchify", 1024, 192, 576},  // tokens x embed x (C*ps*ps)
  };
  if (!quick) gemm_shapes.push_back({"square", 1024, 1024, 1024});

  for (const GemmShape& s : gemm_shapes) {
    const Tensor a = Tensor::randn(Shape{s.m, s.k}, rng);
    const Tensor b = Tensor::randn(Shape{s.k, s.n}, rng);
    const double flops = 2.0 * static_cast<double>(s.m) *
                         static_cast<double>(s.n) * static_cast<double>(s.k);
    char shape[64];
    std::snprintf(shape, sizeof(shape), "%s:%lldx%lldx%lld", s.tag,
                  static_cast<long long>(s.m), static_cast<long long>(s.n),
                  static_cast<long long>(s.k));
    std::vector<float> out(static_cast<std::size_t>(s.m * s.n));
    records.push_back(
        time_case("gemm_nn", shape, "legacy_serial", kSerial, reps, flops, [&] {
          std::fill(out.begin(), out.end(), 0.0f);
          legacy_gemm_nn(out.data(), a.data().data(), b.data().data(), s.m, s.n,
                         s.k);
          return buffer_checksum(out);
        }));
    for (const std::size_t t : {kSerial, threads}) {
      orbit2::kernels::set_max_threads(t);
      records.push_back(time_case("gemm_nn", shape, "kernels", t, reps, flops,
                                  [&] {
                                    const Tensor c = orbit2::matmul(a, b);
                                    return tensor_checksum(c);
                                  }));
    }
    orbit2::kernels::set_max_threads(0);
  }

  // --- GEMM transpose variants at one mid-size shape. ---
  {
    const std::int64_t m = 512, n = 512, k = 512;
    const double flops = 2.0 * 512.0 * 512.0 * 512.0;
    const Tensor a = Tensor::randn(Shape{m, k}, rng);
    const Tensor bt = Tensor::randn(Shape{n, k}, rng);  // for NT
    const Tensor at = Tensor::randn(Shape{k, m}, rng);  // for TN
    const Tensor b = Tensor::randn(Shape{k, n}, rng);
    std::vector<float> out(static_cast<std::size_t>(m * n));
    records.push_back(time_case("gemm_nt", "512x512x512", "legacy_serial",
                                kSerial, reps, flops, [&] {
                                  legacy_gemm_nt(out.data(), a.data().data(),
                                                 bt.data().data(), m, n, k);
                                  return buffer_checksum(out);
                                }));
    records.push_back(time_case("gemm_tn", "512x512x512", "legacy_serial",
                                kSerial, reps, flops, [&] {
                                  std::fill(out.begin(), out.end(), 0.0f);
                                  legacy_gemm_tn(out.data(), at.data().data(),
                                                 b.data().data(), m, n, k);
                                  return buffer_checksum(out);
                                }));
    for (const std::size_t t : {kSerial, threads}) {
      orbit2::kernels::set_max_threads(t);
      records.push_back(time_case("gemm_nt", "512x512x512", "kernels", t, reps,
                                  flops, [&] {
                                    const Tensor c = orbit2::matmul_nt(a, bt);
                                    return tensor_checksum(c);
                                  }));
      records.push_back(time_case("gemm_tn", "512x512x512", "kernels", t, reps,
                                  flops, [&] {
                                    const Tensor c = orbit2::matmul_tn(at, b);
                                    return tensor_checksum(c);
                                  }));
    }
    orbit2::kernels::set_max_threads(0);
  }

  // --- Attention: sequence-length sweep, flash + naive forward. ---
  {
    const std::int64_t d = 32;
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    std::vector<std::int64_t> seqs = {128, 512};
    if (!quick) seqs.push_back(2048);
    for (const std::int64_t seq : seqs) {
      const Tensor q = Tensor::randn(Shape{seq, d}, rng);
      const Tensor k = Tensor::randn(Shape{seq, d}, rng);
      const Tensor v = Tensor::randn(Shape{seq, d}, rng);
      // Scores and the weighted sum are each 2*seq^2*d flops.
      const double flops = 4.0 * static_cast<double>(seq) *
                           static_cast<double>(seq) * static_cast<double>(d);
      const std::string shape = std::to_string(seq) + "x" + std::to_string(d);
      const FlashParams params;
      records.push_back(time_case(
          "attention_flash_fwd", shape, "legacy_serial", kSerial, reps, flops,
          [&] {
            const Tensor o = legacy_flash_forward(q, k, v, scale, params);
            return tensor_checksum(o);
          }));
      for (const std::size_t t : {kSerial, threads}) {
        orbit2::kernels::set_max_threads(t);
        records.push_back(time_case(
            "attention_flash_fwd", shape, "kernels", t, reps, flops, [&] {
              const Tensor o = orbit2::attention_flash_forward(
                  q, k, v, scale, nullptr, params);
              return tensor_checksum(o);
            }));
        records.push_back(time_case(
            "attention_naive_fwd", shape, "kernels", t, reps, flops, [&] {
              const Tensor o =
                  orbit2::attention_naive_forward(q, k, v, scale, nullptr);
              return tensor_checksum(o);
            }));
      }
      orbit2::kernels::set_max_threads(0);
    }
  }

  // --- Conv2d forward: Reslim-style 3x3 stems. ---
  {
    const std::int64_t cin = 8, cout = 16;
    for (const std::int64_t n : {std::int64_t{64}, std::int64_t{128}}) {
      const Tensor input = Tensor::randn(Shape{cin, n, n}, rng);
      const Tensor weight = Tensor::randn(Shape{cout, cin, 3, 3}, rng);
      const Tensor bias = Tensor::randn(Shape{cout}, rng);
      const Conv2dSpec spec{3, 3, 1, 1};
      const double flops = 2.0 * static_cast<double>(cout * cin * 9) *
                           static_cast<double>(n) * static_cast<double>(n);
      const std::string shape = std::to_string(cin) + "x" + std::to_string(n) +
                                "x" + std::to_string(n) + "->" +
                                std::to_string(cout);
      records.push_back(time_case(
          "conv2d_fwd", shape, "legacy_serial", kSerial, reps, flops, [&] {
            const Tensor o = legacy_conv2d_forward(input, weight, bias, spec);
            return tensor_checksum(o);
          }));
      for (const std::size_t t : {kSerial, threads}) {
        orbit2::kernels::set_max_threads(t);
        records.push_back(time_case(
            "conv2d_fwd", shape, "kernels", t, reps, flops, [&] {
              const Tensor o = orbit2::conv2d_forward(input, weight, bias, spec);
              return tensor_checksum(o);
            }));
      }
      orbit2::kernels::set_max_threads(0);
    }
  }

  // --- SIMD ISA sweep: the same kernels under every supported backend. ---
  // Serial threads isolate the microkernel effect from pool scaling; the
  // results are bit-identical across backends (the determinism contract),
  // so only the wall time moves.
  {
    const orbit2::simd::Isa saved_isa = orbit2::simd::active_isa();
    const std::int64_t m = 512, n = 512, k = 512;
    const Tensor a = Tensor::randn(Shape{m, k}, rng);
    const Tensor b = Tensor::randn(Shape{k, n}, rng);
    const double gemm_flops =
        2.0 * static_cast<double>(m) * static_cast<double>(n) *
        static_cast<double>(k);
    const std::int64_t stream_n = quick ? (1 << 20) : (1 << 22);
    const Tensor sx = Tensor::randn(Shape{stream_n}, rng);
    Tensor sy = Tensor::randn(Shape{stream_n}, rng);
    const double stream_flops = 2.0 * static_cast<double>(stream_n);
    orbit2::kernels::set_max_threads(1);
    for (const orbit2::simd::Isa isa : orbit2::simd::supported_isas()) {
      orbit2::simd::set_isa(isa);
      const std::string variant =
          std::string("simd_") + orbit2::simd::isa_name(isa);
      records.push_back(time_case("gemm_nn", "512x512x512", variant, kSerial,
                                  reps, gemm_flops, [&] {
                                    const Tensor c = orbit2::matmul(a, b);
                                    return tensor_checksum(c);
                                  }));
      records.push_back(time_case(
          "axpy_stream", "n=" + std::to_string(stream_n), variant, kSerial,
          reps, stream_flops, [&] {
            sy.axpy_inplace(0.25f, sx);
            return static_cast<double>(sy.data()[0]);
          }));
      records.push_back(time_case(
          "bf16_round_stream", "n=" + std::to_string(stream_n), variant,
          kSerial, reps, static_cast<double>(stream_n), [&] {
            Tensor t = sx.clone();
            t.round_to_bf16_inplace();
            return static_cast<double>(t.data()[0]);
          }));
    }
    orbit2::kernels::set_max_threads(0);
    orbit2::simd::set_isa(saved_isa);
  }

  emit_json(records);
  if (!trace_path.empty()) {
    orbit2::obs::set_enabled(false);
    orbit2::obs::write_chrome_trace(trace_path);
    std::fprintf(stderr, "trace written to %s\n", trace_path.c_str());
  }
  return 0;
}
