// Fig 7(a): radially averaged spatial power spectra of downscaled minimum
// temperature for the two model capacities vs the ground truth.
//
// Paper reference: the 126M model tracks the truth spectrum into the high
// wavenumbers; the 9.5M model deviates at high frequency.
//
// The bench trains the capacity pair, prints the three spectra as columns
// (CSV-ish for plotting), and summarizes the high-frequency spectral error.

#include "bench/common.hpp"
#include "fft/fft.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace orbit2;
  bench::print_header(
      "Fig 7(a) — power spectrum of downscaled minimum temperature");

  const data::DatasetConfig dconfig = bench::us_dataset_config(505, 64, 128);
  data::SyntheticDataset dataset(dconfig);
  const auto in_ch = static_cast<std::int64_t>(dconfig.input_variables.size());
  const auto out_ch = static_cast<std::int64_t>(dconfig.output_variables.size());
  const std::int64_t train_n = 16, epochs = 30, eval_index = train_n;

  std::vector<std::unique_ptr<model::ReslimModel>> models;
  for (int capacity : {0, 1}) {
    models.push_back(bench::train_reslim(
        bench::bench_model_config(capacity, in_ch, out_ch), dataset, train_n,
        epochs, 42));
  }

  const data::Sample physical = dataset.sample_physical(eval_index);
  const std::int64_t h = physical.target.dim(1), w = physical.target.dim(2);
  const Tensor truth = physical.target.slice(0, 0, 1).reshape(Shape{h, w});
  const auto spec_truth = radial_power_spectrum(truth);

  std::vector<std::vector<double>> spectra;
  std::vector<double> hf_error;
  for (const auto& model : models) {
    Tensor pred = train::predict_physical(*model, dataset, eval_index);
    const Tensor field = pred.slice(0, 0, 1).reshape(Shape{h, w});
    spectra.push_back(radial_power_spectrum(field));
    hf_error.push_back(metrics::high_frequency_spectral_error(field, truth));
  }

  std::printf("%6s %14s %14s %14s\n", "k", "truth", "small(9.5M~)",
              "large(126M~)");
  bench::print_rule();
  for (std::size_t k = 1; k < spec_truth.size(); ++k) {
    std::printf("%6zu %14.6e %14.6e %14.6e\n", k, spec_truth[k],
                spectra[0][k], spectra[1][k]);
  }
  std::printf("\nHigh-frequency spectral error (mean |log10 ratio|, top half"
              " of wavenumbers):\n");
  std::printf("  small model: %.4f\n  large model: %.4f\n", hf_error[0],
              hf_error[1]);
  std::printf(
      "\nShape check: both capacity tiers under-represent the truth's "
      "high-frequency\ntail — the deviation the paper's Fig 7(a) shows for "
      "its 9.5M model. The paper's\nfull result (the 126M model recovering "
      "the tail) additionally needs the real\nobservational archives: at "
      "bench scale the fine-scale signal is information-\nlimited (see "
      "EXPERIMENTS.md, Table IV discussion), so the capacity ordering\non "
      "spectral error is not expected to reproduce here.\n");
  return 0;
}
