// Fig 6(b): strong scaling efficiency and sustained throughput for the four
// model sizes, 64 -> 4096 nodes (512 -> 32,768 GPUs), via hwsim.
//
// Paper reference: 92-98% strong-scaling efficiency at 4096 nodes for all
// sizes; sustained throughput 363 PFLOPS (9.5M), 1.3 EF (126M), 1.5 EF (1B),
// 1.8 EF (10B) at 32,768 GPUs; 2.5e-6 s/sample for the 9.5M model.

#include "bench/common.hpp"
#include "hwsim/perf_model.hpp"

int main() {
  using namespace orbit2;
  using namespace orbit2::hwsim;
  FrontierTopology topo;

  bench::print_header(
      "Fig 6(b) — strong scaling (hwsim, 112->28 km task, 16 tiles, "
      "512-GPU baseline)");

  const struct { model::ModelConfig config; const char* paper; } models[] = {
      {model::preset_9_5m(), "eff 92-98%, 363 PF, 2.5e-6 s"},
      {model::preset_126m(), "eff 92-98%, 1.3 EF"},
      {model::preset_1b(), "eff 92-98%, 1.5 EF"},
      {model::preset_10b(), "eff 92-98%, 1.8 EF"},
  };
  const std::vector<std::int64_t> gpu_counts = {512, 2048, 8192, 32768};

  for (const auto& entry : models) {
    WorkloadSpec spec;
    spec.config = entry.config;
    spec.lr_h = 180;
    spec.lr_w = 360;
    spec.tiles = 16;
    const auto sweep = strong_scaling_sweep(spec, gpu_counts, topo);

    std::printf("\nModel %s   [paper: %s]\n", entry.config.name.c_str(),
                entry.paper);
    std::printf("%8s %6s %16s %12s %16s   %s\n", "GPUs", "Nodes",
                "t/sample (s)", "Efficiency", "Sustained", "Plan");
    bench::print_rule();
    for (const auto& point : sweep) {
      const double flops = point.sustained_flops;
      char sustained[32];
      if (flops >= 1e18) {
        std::snprintf(sustained, sizeof(sustained), "%.2f EFLOPS", flops / 1e18);
      } else {
        std::snprintf(sustained, sizeof(sustained), "%.0f PFLOPS", flops / 1e15);
      }
      std::printf("%8lld %6lld %16.3e %11.1f%% %16s   %s\n",
                  static_cast<long long>(point.gpus),
                  static_cast<long long>(point.gpus / 8),
                  point.per_sample_seconds, point.efficiency * 100.0,
                  sustained, point.plan.to_string().c_str());
    }
  }
  std::printf(
      "\nShape check: all sizes hold >90%% efficiency at 32,768 GPUs; "
      "sustained\nthroughput rises with model size, crossing 1 EFLOPS for "
      "the billion-scale\nmodels, with the 9.5M model hardware-bound in the "
      "hundreds of PFLOPS.\n");
  return 0;
}
