// Design-choice ablations (DESIGN.md §3, "(micro)" row and §4 notes): the
// knobs the paper's architecture section motivates, each toggled on a real
// CPU training:
//
//   1. Residual convolutional path on/off  (paper: stabilizes training and
//      reduces uncertainty — off forces the ViT to learn the full map).
//   2. Bayesian MRF-TV prior on/off        (paper: spatial coherence).
//   3. BF16 mixed precision on/off         (paper §III-D: speed/stability).
//   4. Halo width sweep                    (paper Fig 4b: border artifacts
//      vs halo cost).

#include "bench/common.hpp"
#include "core/kernels.hpp"
#include "tiles/tiles.hpp"

namespace orbit2 {
namespace {

struct AblationResult {
  double final_loss = 0.0;
  double seconds_per_sample = 0.0;
};

AblationResult run_training(model::ModelConfig mconfig,
                            train::TrainerConfig tconfig,
                            const data::SyntheticDataset& dataset) {
  Rng rng(42);
  model::ReslimModel model(mconfig, rng);
  train::Trainer trainer(model, tconfig);
  const auto indices = bench::index_range(8);
  train::EpochStats last{};
  for (std::int64_t e = 0; e < tconfig.epochs; ++e) {
    last = trainer.train_epoch(dataset, indices);
  }
  return {last.mean_loss, last.seconds_per_sample()};
}

}  // namespace
}  // namespace orbit2

int main() {
  using namespace orbit2;
  const data::DatasetConfig dconfig = bench::us_dataset_config(909, 32, 64);
  data::SyntheticDataset dataset(dconfig);
  const auto in_ch = static_cast<std::int64_t>(dconfig.input_variables.size());
  const auto out_ch = static_cast<std::int64_t>(dconfig.output_variables.size());
  const model::ModelConfig base_model = bench::bench_model_config(0, in_ch, out_ch);
  train::TrainerConfig base_train;
  base_train.epochs = 10;
  base_train.batch_size = 2;
  base_train.lr = 2e-3f;

  bench::print_header("Ablation 1 — residual convolutional path");
  {
    const auto with_path = run_training(base_model, base_train, dataset);
    model::ModelConfig no_path = base_model;
    no_path.use_residual_path = false;
    const auto without_path = run_training(no_path, base_train, dataset);
    std::printf("%-24s final loss %8.4f   %10.4f s/sample\n",
                "with residual path", with_path.final_loss,
                with_path.seconds_per_sample);
    std::printf("%-24s final loss %8.4f   %10.4f s/sample\n",
                "without residual path", without_path.final_loss,
                without_path.seconds_per_sample);
    std::printf("-> the path cuts the loss %.1fx at equal epochs (it hands "
                "the ViT only the residual).\n",
                without_path.final_loss / with_path.final_loss);
  }

  bench::print_header("Ablation 2 — Bayesian MRF total-variation prior");
  {
    const auto with_tv = run_training(base_model, base_train, dataset);
    train::TrainerConfig no_tv = base_train;
    no_tv.tv_weight = 0.0f;
    const auto without_tv = run_training(base_model, no_tv, dataset);
    std::printf("%-24s final loss %8.4f\n", "tv_weight = 0.005",
                with_tv.final_loss);
    std::printf("%-24s final loss %8.4f\n", "tv_weight = 0",
                without_tv.final_loss);
    std::printf("-> losses are not directly comparable (the prior adds a "
                "term); the prior's\n   role is spatial coherence — see the "
                "TV tests for its smoothing behaviour.\n");
  }

  bench::print_header("Ablation 3 — BF16 mixed precision");
  {
    const auto fp32 = run_training(base_model, base_train, dataset);
    train::TrainerConfig amp = base_train;
    amp.mixed_precision = true;
    const auto bf16 = run_training(base_model, amp, dataset);
    std::printf("%-24s final loss %8.4f   %10.4f s/sample\n", "fp32",
                fp32.final_loss, fp32.seconds_per_sample);
    std::printf("%-24s final loss %8.4f   %10.4f s/sample\n",
                "bf16 + GradScaler", bf16.final_loss,
                bf16.seconds_per_sample);
    std::printf("-> training stays stable under bf16 rounding with dynamic "
                "loss scaling\n   (CPU emulation shows no speedup; on matrix "
                "units it is the 2x lever).\n");
  }

  bench::print_header("Ablation 4 — halo width vs border artifacts (Fig 4b)");
  {
    Rng rng(42);
    model::ReslimModel model(bench::bench_model_config(0, in_ch, out_ch), rng);
    train::TrainerConfig tconfig = base_train;
    train::Trainer trainer(model, tconfig);
    for (std::int64_t e = 0; e < tconfig.epochs; ++e) {
      trainer.train_epoch(dataset, bench::index_range(8));
    }
    const data::Sample sample = dataset.sample(9);
    const Tensor monolithic = model.predict_field(sample.input);
    kernels::set_max_threads(4);
    std::printf("%6s %18s %14s\n", "halo", "border-band MSE",
                "tile work (+%)");
    bench::print_rule();
    // Even halos keep padded tiles patch-aligned (patch = 2).
    for (std::int64_t halo : {0, 2, 4}) {
      const TileSpec spec{2, 2, halo};
      const auto regions =
          partition_tiles(sample.input.dim(1), sample.input.dim(2), spec);
      const Tensor tiled = tiled_apply(
          sample.input, spec, 4,
          [&model](std::size_t, const Tensor& tile) {
            return model.predict_field(tile);
          });
      const float band =
          border_band_mse(tiled, monolithic, regions, 4, 2);
      // Work overhead: padded vs core pixels.
      std::int64_t pad_pixels = 0, core_pixels = 0;
      for (const auto& r : regions) {
        pad_pixels += r.pad_h * r.pad_w;
        core_pixels += r.core_h * r.core_w;
      }
      std::printf("%6lld %18.5f %13.1f%%\n", static_cast<long long>(halo),
                  band,
                  100.0 * (static_cast<double>(pad_pixels) / core_pixels - 1.0));
    }
    std::printf("-> larger halos suppress border artifacts at the cost of "
                "redundant tile work\n   (the paper's empirical halo-width "
                "trade-off).\n");
    kernels::set_max_threads(0);
  }
  return 0;
}
