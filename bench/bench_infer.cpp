// Compiled-inference benchmark: eager (tape-free) forward vs compiled plan
// replay for Reslim and the ViT baseline, across thread counts, with
// per-call heap-allocation counts proving the replay path's zero-allocation
// contract and plan statistics (fusion + arena aliasing).
//
// Usage: bench_infer [--reps N] [--quick] [--trace PATH]
//   --reps N     best-of-N timing per case (default 5)
//   --quick      smaller grid (CI smoke runs)
//   --trace PATH enable obs tracing and write Chrome trace JSON to PATH
//
// Human-readable tables go to stderr; stdout carries a single JSON array so
// CI can redirect and schema-check it.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.hpp"
#include "core/debug_check.hpp"
#include "core/kernels.hpp"
#include "core/obs.hpp"
#include "graph/executor.hpp"
#include "graph/ir.hpp"
#include "graph/plan.hpp"
#include "model/reslim.hpp"
#include "model/vit_baseline.hpp"

#include "bench/common.hpp"

ORBIT2_INSTALL_ALLOC_COUNTER();

namespace orbit2::bench {
namespace {

struct Record {
  std::string model;
  std::string path;  // "eager" | "compiled"
  std::size_t threads = 0;
  double seconds = 0.0;
  std::int64_t allocs_per_call = 0;
  double checksum = 0.0;
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double tensor_checksum(const Tensor& t) {
  double acc = 0.0;
  for (const float v : t.data()) acc += static_cast<double>(v);
  return acc;
}

Tensor make_input(std::int64_t c, std::int64_t h, std::int64_t w) {
  Tensor input(Shape{c, h, w});
  float* p = input.data().data();
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    p[i] = std::sin(0.011f * static_cast<float>(i));
  }
  return input;
}

template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    fn();
    const double t1 = now_seconds();
    best = std::min(best, t1 - t0);
    if (t1 - t0 > 1.0) break;
  }
  return best;
}

template <typename Fn>
std::int64_t allocs_of(Fn&& fn) {
  if (!debug::alloc_counting_installed()) return -1;
  fn();  // warm any lazy scratch before counting
  debug::AllocCountScope scope;
  fn();
  return scope.delta();
}

/// Benchmarks one model on one input across thread counts; appends records.
template <typename Model>
void bench_model(const char* name, const Model& model, const Tensor& input,
                 int reps, std::vector<Record>& records) {
  // Compile once via the model-independent capture path so plan stats are
  // reportable (predict_field uses its own internal cache).
  std::shared_ptr<const graph::Plan> plan;
  {
    autograd::InferenceModeScope no_tape;
    graph::CaptureSink sink(input);
    Tensor out;
    {
      graph::CaptureScope scope(sink);
      out = model.forward(input).value();
    }
    if (sink.failed()) {
      std::fprintf(stderr, "%s: capture failed (%s); skipping\n", name,
                   sink.fail_reason().c_str());
      return;
    }
    plan = std::make_shared<const graph::Plan>(
        graph::compile_plan(sink.take(out)));
  }
  std::fprintf(stderr,
               "%s plan: %lld ops (from %lld eager), arena %.2f MiB "
               "(unaliased %.2f MiB, %.1f%% saved)\n",
               name, static_cast<long long>(plan->num_ops()),
               static_cast<long long>(plan->raw_op_count),
               static_cast<double>(plan->arena_floats()) * 4.0 / 1048576.0,
               static_cast<double>(plan->unaliased_floats()) * 4.0 / 1048576.0,
               100.0 *
                   (1.0 - static_cast<double>(plan->arena_floats()) /
                              static_cast<double>(plan->unaliased_floats())));

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    kernels::set_max_threads(threads);
    graph::Executor executor(plan);
    executor.run(input);  // warmup: thread-local kernel scratch

    Record eager;
    eager.model = name;
    eager.path = "eager";
    eager.threads = threads;
    {
      autograd::InferenceModeScope no_tape;
      eager.seconds = best_of(reps, [&] { (void)model.forward(input); });
      eager.checksum = tensor_checksum(model.forward(input).value());
      eager.allocs_per_call =
          allocs_of([&] { (void)model.forward(input).value(); });
    }
    records.push_back(eager);

    Record compiled;
    compiled.model = name;
    compiled.path = "compiled";
    compiled.threads = threads;
    compiled.seconds = best_of(reps, [&] { executor.run(input); });
    compiled.checksum = tensor_checksum(executor.run(input));
    compiled.allocs_per_call = allocs_of([&] { executor.run(input); });
    records.push_back(compiled);

    std::fprintf(stderr,
                 "%-14s t=%zu  eager %8.3f ms (%6lld allocs)   compiled "
                 "%8.3f ms (%lld allocs)   speedup %.2fx   bitwise %s\n",
                 name, threads, eager.seconds * 1e3,
                 static_cast<long long>(eager.allocs_per_call),
                 compiled.seconds * 1e3,
                 static_cast<long long>(compiled.allocs_per_call),
                 eager.seconds / compiled.seconds,
                 eager.checksum == compiled.checksum ? "ok" : "DIVERGED");
  }
  kernels::set_max_threads(0);
}

void emit_json(const std::vector<Record>& records) {
  std::printf("[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::printf(
        "  {\"model\": \"%s\", \"path\": \"%s\", \"threads\": %zu, "
        "\"seconds\": %.6f, \"allocs_per_call\": %lld, \"checksum\": %.6g}%s\n",
        r.model.c_str(), r.path.c_str(), r.threads, r.seconds,
        static_cast<long long>(r.allocs_per_call), r.checksum,
        i + 1 < records.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace
}  // namespace orbit2::bench

int main(int argc, char** argv) {
  using namespace orbit2;
  int reps = 5;
  bool quick = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--reps N] [--quick] [--trace PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  // Tracing is enabled only around the timed section: obs counters/spans
  // allocate on first touch, which would pollute the alloc-per-call numbers
  // if left on during the counting passes. Counting happens first.
  const std::int64_t h = quick ? 16 : 32;
  const std::int64_t w = quick ? 32 : 64;
  const std::int64_t in_channels = 8, out_channels = 2;

  std::fprintf(stderr, "bench_infer: LR grid %lldx%lld, %lld->%lld channels\n",
               static_cast<long long>(h), static_cast<long long>(w),
               static_cast<long long>(in_channels),
               static_cast<long long>(out_channels));

  const Tensor input = bench::make_input(in_channels, h, w);
  std::vector<bench::Record> records;

  {
    Rng rng(42);
    model::ReslimModel reslim(
        bench::bench_model_config(0, in_channels, out_channels), rng);
    bench::bench_model("reslim", reslim, input, reps, records);
  }
  {
    Rng rng(43);
    model::ModelConfig config =
        bench::bench_model_config(0, in_channels, out_channels);
    config.architecture = model::Architecture::kViTBaseline;
    model::ViTBaselineModel vit(config, rng);
    bench::bench_model("vit_baseline", vit, input, reps, records);
  }

  if (!trace_path.empty()) {
    // One traced serve per model so the replay span structure lands in the
    // artifact (counters include graph/replay and graph/alloc_bytes).
    obs::set_enabled(true);
    Rng rng(44);
    model::ReslimModel reslim(
        bench::bench_model_config(0, in_channels, out_channels), rng);
    (void)reslim.predict_field(input);
    (void)reslim.predict_field(input);
    obs::write_chrome_trace(trace_path);
    obs::set_enabled(false);
    std::fprintf(stderr, "trace written to %s\n", trace_path.c_str());
  }

  bench::emit_json(records);
  return 0;
}
