// Table II(b): adaptive compression & tiling speedups vs the Reslim
// baseline (9.5M model, 112->28 km task, 128 GPUs in the paper).
//
// Paper reference rows:
//   compression  8x -> 3.3x speedup, PSNR 37.7   tiles  4 -> 1.5x
//   compression 16x -> 6.6x,        PSNR 37.8   tiles 16 -> 1.9x
//   compression 32x -> 7.1x,        PSNR 37.9   tiles 36 -> 1.6x
//
// Layers of evidence:
//  1. hwsim projections at paper scale for the same sweep.
//  2. Real CPU measurement at bench scale: per-sample training time and
//     accuracy for compression in {1, 8, 16, 32} on one model.

#include "bench/common.hpp"
#include "hwsim/parallelism.hpp"
#include "hwsim/perf_model.hpp"
#include "metrics/metrics.hpp"

namespace orbit2 {
namespace {

void hwsim_sweep() {
  using namespace hwsim;
  FrontierTopology topo;
  bench::print_header(
      "Table II(b) — hwsim projection (9.5M, 112->28 km, 128 GPUs)");

  WorkloadSpec base;
  base.config = model::preset_9_5m();
  base.lr_h = 180;
  base.lr_w = 360;
  const auto base_plan = plan_parallelism(base.config, 128, 1);
  const double base_time = estimate_step(base, base_plan, topo).per_sample_seconds;
  std::printf("Baseline (1x compression, 1 tile): %.3e s/sample\n\n", base_time);

  std::printf("%-14s %10s %12s  %s\n", "Configuration", "Speedup",
              "t/sample", "[paper speedup]");
  bench::print_rule();
  const struct { float comp; std::int64_t tiles; const char* paper; } rows[] = {
      {8.0f, 1, "3.3x"},  {16.0f, 1, "6.6x"}, {32.0f, 1, "7.1x"},
      {1.0f, 4, "1.5x"},  {1.0f, 16, "1.9x"}, {1.0f, 36, "1.6x"},
  };
  for (const auto& row : rows) {
    WorkloadSpec spec = base;
    spec.compression = row.comp;
    spec.tiles = row.tiles;
    const auto plan = plan_parallelism(spec.config, 128, row.tiles);
    const double t = estimate_step(spec, plan, topo).per_sample_seconds;
    char label[32];
    std::snprintf(label, sizeof(label), "comp %2.0fx tiles %2lld", row.comp,
                  static_cast<long long>(row.tiles));
    std::printf("%-14s %9.2fx %12.3e  [%s]\n", label, base_time / t, t,
                row.paper);
  }
  std::printf(
      "\nShape check: compression speedup grows then saturates; tiling "
      "peaks near 16 tiles\n(halo overhead erodes 36-tile gains).\n");
}

void real_sweep() {
  bench::print_header(
      "Table II(b) — real CPU measurement at bench scale (compression sweep)");
  const data::DatasetConfig dconfig = bench::us_dataset_config(202, 64, 128);
  data::SyntheticDataset dataset(dconfig);
  const auto in_ch = static_cast<std::int64_t>(dconfig.input_variables.size());
  const auto out_ch = static_cast<std::int64_t>(dconfig.output_variables.size());

  std::printf("%-14s %14s %10s %8s %8s\n", "Compression", "t/sample (s)",
              "Speedup", "PSNR", "SSIM");
  bench::print_rule();

  double base_time = 0.0;
  for (float comp : {1.0f, 8.0f, 16.0f, 32.0f}) {
    model::ModelConfig conf = bench::bench_model_config(0, in_ch, out_ch);
    conf.compression_ratio = comp;
    Rng rng(3);
    model::ReslimModel model(conf, rng);
    train::TrainerConfig tconf;
    tconf.epochs = 3;
    tconf.batch_size = 2;
    tconf.lr = 2e-3f;
    train::Trainer trainer(model, tconf);
    const auto indices = bench::index_range(6);
    train::EpochStats last{};
    for (int e = 0; e < 3; ++e) last = trainer.train_epoch(dataset, indices);

    // Accuracy on two held-out samples (temperature channel).
    double psnr_sum = 0.0, ssim_sum = 0.0;
    for (std::int64_t index : bench::index_range(2, 6)) {
      const data::Sample physical = dataset.sample_physical(index);
      Tensor pred = train::predict_physical(model, dataset, index);
      const std::int64_t h = pred.dim(1), w = pred.dim(2);
      const Tensor pf = pred.slice(0, 0, 1).reshape(Shape{h, w});
      const Tensor tf = physical.target.slice(0, 0, 1).reshape(Shape{h, w});
      psnr_sum += metrics::psnr(pf, tf);
      ssim_sum += metrics::ssim(pf, tf);
    }
    if (comp == 1.0f) base_time = last.seconds_per_sample();
    std::printf("%-14.0fx %14.4e %9.2fx %8.2f %8.3f\n", comp,
                last.seconds_per_sample(),
                base_time / last.seconds_per_sample(), psnr_sum / 2.0,
                ssim_sum / 2.0);
  }
  std::printf(
      "\nShape check: higher compression -> faster per sample with stable "
      "accuracy\n(quad-tree overhead bounds the gain, as in the paper).\n");
}

}  // namespace
}  // namespace orbit2

int main() {
  orbit2::hwsim_sweep();
  orbit2::real_sweep();
  return 0;
}
