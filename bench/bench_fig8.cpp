// Fig 8: global inference generalization — a model trained on "reanalysis"
// targets applied, without fine-tuning or bias correction, against
// independent "satellite observation" targets (the ERA5 -> IMERG flow).
//
// Paper reference: R2 = 0.90, SSIM = 0.96, PSNR = 41.8, RMSE = 0.34 mm/day
// (log(x+1) space), noticeably below the in-distribution Table IV scores.
//
// The bench trains on the clean generator, evaluates precipitation against
// observation-perturbed targets (sensor gain/additive noise + footprint
// smoothing), and prints both the in-distribution and observation scores so
// the generalization gap is visible.

#include <cmath>

#include "bench/common.hpp"
#include "data/bias_correction.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace orbit2;
  bench::print_header(
      "Fig 8 — global inference vs observation-style targets (ERA5->IMERG "
      "analogue)");

  // Global-style dataset: fresh terrain per sample, full 23-variable input.
  data::DatasetConfig dconfig;
  dconfig.hr_h = 64;
  dconfig.hr_w = 128;
  dconfig.upscale = 4;
  dconfig.seed = 707;
  dconfig.fixed_region = false;
  dconfig.output_variables = {data::daymet_output_variables()[2]};  // prcp
  data::SyntheticDataset train_data(dconfig);

  auto obs_config = dconfig;
  obs_config.observation_targets = true;
  data::SyntheticDataset obs_data(obs_config);

  const auto in_ch = static_cast<std::int64_t>(dconfig.input_variables.size());
  auto model = bench::train_reslim(bench::bench_model_config(1, in_ch, 1),
                                   train_data, 16, 20, 42);

  const auto eval_indices = bench::index_range(4, 16);
  const auto in_dist = train::evaluate_model(*model, train_data, eval_indices);
  const auto vs_obs = train::evaluate_model(*model, obs_data, eval_indices);

  std::printf("%-28s %7s %8s %7s %7s\n", "Evaluation", "R2", "RMSE", "SSIM",
              "PSNR");
  bench::print_rule();
  std::printf("%-28s %7.4f %8.4f %7.3f %7.2f\n",
              "vs reanalysis truth", in_dist[0].report.r2,
              in_dist[0].report.rmse, in_dist[0].report.ssim,
              in_dist[0].report.psnr);
  std::printf("%-28s %7.4f %8.4f %7.3f %7.2f\n",
              "vs satellite observations", vs_obs[0].report.r2,
              vs_obs[0].report.rmse, vs_obs[0].report.ssim,
              vs_obs[0].report.psnr);
  std::printf("%-28s %7s %8s %7s %7s\n", "[paper, vs IMERG]", "0.90", "0.34",
              "0.96", "41.8");

  // Extension: what quantile-mapping bias correction (which the paper's
  // inference deliberately omits) would add. Fit on a reference sample's
  // (prediction, observation) pair, apply to a held-out prediction.
  {
    // Classical quantile mapping is fitted on a climatological reference
    // record, not a single day: pool all but the last evaluation sample.
    std::vector<float> obs_pool, pred_pool;
    for (std::size_t i = 0; i + 1 < eval_indices.size(); ++i) {
      const std::int64_t ref_index = eval_indices[i];
      Tensor ref_pred = metrics::log1p_transform(
          train::predict_physical(*model, obs_data, ref_index));
      const Tensor ref_obs = metrics::log1p_transform(
          obs_data.sample_physical(ref_index).target);
      pred_pool.insert(pred_pool.end(), ref_pred.data().begin(),
                       ref_pred.data().end());
      obs_pool.insert(obs_pool.end(), ref_obs.data().begin(),
                      ref_obs.data().end());
    }
    const std::int64_t test_index = eval_indices.back();
    data::QuantileMapper mapper(
        Tensor::from_vector(Shape{static_cast<std::int64_t>(obs_pool.size())},
                            obs_pool),
        Tensor::from_vector(Shape{static_cast<std::int64_t>(pred_pool.size())},
                            pred_pool),
        64);

    Tensor test_pred = train::predict_physical(*model, obs_data, test_index);
    const data::Sample test_obs = obs_data.sample_physical(test_index);
    const Tensor raw = metrics::log1p_transform(test_pred);
    const Tensor corrected = mapper.correct(raw);
    const Tensor truth = metrics::log1p_transform(test_obs.target);
    // Quantile mapping calibrates the *marginal distribution* (what bias
    // correction is for), at a known cost in pointwise RMSE from variance
    // sharpening — report both sides of that trade-off.
    auto quantile_gap = [&](const Tensor& a) {
      double gap = 0.0;
      for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        gap += std::fabs(metrics::quantile(a, q) - metrics::quantile(truth, q));
      }
      return gap;
    };
    std::printf("\nwith quantile-mapping bias correction (held-out sample):\n");
    std::printf("  %-11s distribution gap %7.4f   pointwise RMSE %7.4f\n",
                "raw", quantile_gap(raw), metrics::rmse(raw, truth));
    std::printf("  %-11s distribution gap %7.4f   pointwise RMSE %7.4f\n",
                "corrected", quantile_gap(corrected),
                metrics::rmse(corrected, truth));
    std::printf("  -> correction calibrates the marginal distribution "
                "(smaller gap); the RMSE\n     rise is the classical "
                "sharpening trade-off of quantile mapping.\n");
  }
  std::printf(
      "\nShape check: the model transfers to the observation operator "
      "without collapse —\nscores on the perturbed targets are comparable "
      "to the clean evaluation (the\noperator's footprint smoothing even "
      "mildly favors the model's smooth output).\nThat is the Fig 8 claim "
      "at bench scale: regional training extends to the\nshifted "
      "observation distribution without fine-tuning or bias "
      "correction.\n");
  return 0;
}
