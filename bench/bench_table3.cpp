// Table III: maximum sequence length scaling across architectures, model
// sizes, compression, tiles and GPU counts, from the hwsim memory model.
//
// Paper reference rows (18 output variables):
//   ViT    9.5M  1x  1 tile    8 GPUs  -> 25K    [128, 256, 18]    156 km
//   ViT    10B   1x  1 tile    8 GPUs  -> OOM
//   Reslim 9.5M  1x  1 tile    8 GPUs  -> 298M   [5760, 11520, 18] 3.5 km
//   Reslim 9.5M  1x  1 tile   32 GPUs  -> 466M   [7200, 14400, 18] 2.7 km
//   Reslim 9.5M  4x 16 tiles   8 GPUs  -> 1.1B   [11520, 23040,18] 1.7 km
//   Reslim 9.5M  4x 16 tiles 128 GPUs  -> 4.2B   [21600, 43200,18] 0.9 km
//   Reslim 10B   1x  1 tile    8 GPUs  -> 18M    [1440, 2880, 18]  14 km
//   Reslim 10B   4x 16 tiles   8 GPUs  -> 74M    [2880, 5760, 18]  6.9 km
//   Reslim 10B   4x 16 tiles 512 GPUs  -> 671M   [8640, 17280,18]  2.3 km

#include "bench/common.hpp"
#include "hwsim/perf_model.hpp"

int main() {
  using namespace orbit2;
  using namespace orbit2::hwsim;
  FrontierTopology topo;

  bench::print_header(
      "Table III — maximum sequence length (hwsim memory model, 18 output "
      "vars)");
  std::printf("%-8s %-6s %5s %6s %6s | %14s %-18s %8s | %s\n", "Arch", "Size",
              "Comp", "Tiles", "GPUs", "Max seq", "Output", "Res(km)",
              "[paper seq / km]");
  bench::print_rule();

  struct Row {
    model::Architecture arch;
    const char* arch_name;
    model::ModelConfig (*preset)();
    float comp;
    std::int64_t tiles;
    std::int64_t gpus;
    const char* paper;
  };
  const Row rows[] = {
      {model::Architecture::kViTBaseline, "ViT", model::preset_9_5m, 1.0f, 1,
       8, "25K / 156"},
      {model::Architecture::kViTBaseline, "ViT", model::preset_10b, 1.0f, 1,
       8, "OOM"},
      {model::Architecture::kReslim, "Reslim", model::preset_9_5m, 1.0f, 1, 8,
       "298M / 3.5"},
      {model::Architecture::kReslim, "Reslim", model::preset_9_5m, 1.0f, 1,
       32, "466M / 2.7"},
      {model::Architecture::kReslim, "Reslim", model::preset_9_5m, 4.0f, 16,
       8, "1.1B / 1.7"},
      {model::Architecture::kReslim, "Reslim", model::preset_9_5m, 4.0f, 16,
       128, "4.2B / 0.9"},
      {model::Architecture::kReslim, "Reslim", model::preset_10b, 1.0f, 1, 8,
       "18M / 14"},
      {model::Architecture::kReslim, "Reslim", model::preset_10b, 4.0f, 16, 8,
       "74M / 6.9"},
      {model::Architecture::kReslim, "Reslim", model::preset_10b, 4.0f, 16,
       512, "671M / 2.3"},
  };

  for (const Row& row : rows) {
    model::ModelConfig config = row.preset();
    config.architecture = row.arch;
    config.out_channels = 18;
    const MaxSequenceResult result =
        max_sequence_length(config, row.comp, row.tiles, row.gpus, topo);
    if (!result.feasible) {
      std::printf("%-8s %-6s %4.0fx %6lld %6lld | %14s %-18s %8s | [%s]\n",
                  row.arch_name, config.name.c_str(), row.comp,
                  static_cast<long long>(row.tiles),
                  static_cast<long long>(row.gpus), "OOM", "-", "-",
                  row.paper);
      continue;
    }
    char output[32];
    std::snprintf(output, sizeof(output), "[%lld, %lld, 18]",
                  static_cast<long long>(result.out_h),
                  static_cast<long long>(result.out_w));
    std::printf("%-8s %-6s %4.0fx %6lld %6lld | %14lld %-18s %8.2f | [%s]\n",
                row.arch_name, config.name.c_str(), row.comp,
                static_cast<long long>(row.tiles),
                static_cast<long long>(row.gpus),
                static_cast<long long>(result.sequence_length), output,
                result.resolution_km, row.paper);
  }
  std::printf(
      "\nShape check: Reslim >> ViT at equal resources; the 10B ViT OOMs "
      "outright;\ncompression + tiling + more GPUs push Reslim into the "
      "billion-token regime.\nAbsolute values differ from the paper where its "
      "memory internals are\nunpublished; orderings and regimes match.\n");
  return 0;
}
