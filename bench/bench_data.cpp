// Data-pipeline benchmarks: sample-build and epoch-level timings for the
// synthetic dataset, plus an obs-traced 2-step TilesTrainer run whose
// train/data phase totals quantify input-pipeline cost against the model
// phases. Emits a JSON array on stdout so EXPERIMENTS.md and CI can diff
// runs mechanically (same contract as bench_kernels).
//
// Usage: bench_data [--reps N] [--threads N] [--quick] [--trace PATH]
//   --reps N     timing repetitions per case, best-of (default 3)
//   --threads N  kernel thread count for the parallel variants (default 4)
//   --quick      smaller grids / fewer samples (CI smoke runs)
//   --trace PATH enable obs tracing and write Chrome trace JSON to PATH

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/kernels.hpp"
#include "core/obs.hpp"
#include "data/dataset.hpp"
#include "model/reslim.hpp"
#include "train/tiles_trainer.hpp"

namespace {

using orbit2::Rng;
using orbit2::Tensor;

struct Record {
  std::string bench;    // e.g. "sample_build"
  std::string config;   // e.g. "128x256:fixed"
  std::string variant;  // e.g. "first_sample" / "steady_state"
  std::size_t threads = 1;
  double seconds = 0.0;
  double checksum = 0.0;  // sum of sample elements; sanity, not bit-exactness
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double sample_checksum(const orbit2::data::Sample& s) {
  double acc = 0.0;
  for (const float v : s.input.data()) acc += static_cast<double>(v);
  for (const float v : s.target.data()) acc += static_cast<double>(v);
  return acc;
}

// Best-of-`reps` wall time of fn(); fn returns a checksum so the work cannot
// be optimized away. Cases slower than a second stop after one rep to bound
// total harness runtime.
template <typename Fn>
Record time_case(const std::string& bench, const std::string& config,
                 const std::string& variant, std::size_t threads, int reps,
                 Fn&& fn) {
  Record rec;
  rec.bench = bench;
  rec.config = config;
  rec.variant = variant;
  rec.threads = threads;
  rec.seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    rec.checksum = fn();
    const double t1 = now_seconds();
    rec.seconds = std::min(rec.seconds, t1 - t0);
    if (t1 - t0 > 1.0) break;
  }
  return rec;
}

void emit_json(const std::vector<Record>& records) {
  std::printf("[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::printf(
        "  {\"bench\": \"%s\", \"config\": \"%s\", \"variant\": \"%s\", "
        "\"threads\": %zu, \"seconds\": %.6f, \"checksum\": %.6g}%s\n",
        r.bench.c_str(), r.config.c_str(), r.variant.c_str(), r.threads,
        r.seconds, r.checksum, i + 1 < records.size() ? "," : "");
  }
  std::printf("]\n");
}

orbit2::data::DatasetConfig dataset_config(std::int64_t h, std::int64_t w,
                                           bool fixed_region) {
  orbit2::data::DatasetConfig config;
  config.hr_h = h;
  config.hr_w = w;
  config.upscale = 4;
  config.seed = 99;
  config.fixed_region = fixed_region;
  return config;
}

// Total wall seconds of spans named `name` in the current obs snapshot.
double span_total_seconds(const std::string& name) {
  double total_ns = 0.0;
  for (const auto& s : orbit2::obs::snapshot_spans()) {
    if (!s.simulated && s.name == name) {
      total_ns += static_cast<double>(s.dur_ns);
    }
  }
  return total_ns * 1e-9;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  std::size_t threads = 4;
  bool quick = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::max(1, std::atoi(argv[++i])));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--reps N] [--threads N] [--quick] "
                   "[--trace PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!trace_path.empty()) orbit2::obs::set_enabled(true);

  std::vector<Record> records;
  const std::size_t kSerial = 1;
  const std::int64_t h = quick ? 64 : 128;
  const std::int64_t w = quick ? 128 : 256;
  const std::int64_t epoch_samples = quick ? 4 : 8;

  // --- Sample build: full catalogue, fixed vs fresh terrain. ---
  // "first_sample" constructs a fresh dataset per rep, so per-dataset caches
  // start cold; "steady_state" reuses one dataset, so terrain/filter caches
  // (when present) are warm after the priming call.
  for (const bool fixed : {true, false}) {
    char config_tag[64];
    std::snprintf(config_tag, sizeof(config_tag), "%lldx%lld:%s",
                  static_cast<long long>(h), static_cast<long long>(w),
                  fixed ? "fixed" : "fresh");
    for (const std::size_t t : {kSerial, threads}) {
      orbit2::kernels::set_max_threads(t);
      records.push_back(
          time_case("sample_build", config_tag, "first_sample", t, reps, [&] {
            orbit2::data::SyntheticDataset dataset(dataset_config(h, w, fixed));
            return sample_checksum(dataset.sample(0));
          }));
      {
        orbit2::data::SyntheticDataset dataset(dataset_config(h, w, fixed));
        (void)dataset.sample(0);  // prime per-dataset caches
        std::int64_t index = 0;
        records.push_back(
            time_case("sample_build", config_tag, "steady_state", t, reps,
                      [&] { return sample_checksum(dataset.sample(index++)); }));
      }
      // Epoch-level: a full pass over `epoch_samples` indices.
      {
        orbit2::data::SyntheticDataset dataset(dataset_config(h, w, fixed));
        char epoch_tag[80];
        std::snprintf(epoch_tag, sizeof(epoch_tag), "%s:n%lld", config_tag,
                      static_cast<long long>(epoch_samples));
        records.push_back(
            time_case("epoch_build", epoch_tag, "steady_state", t, reps, [&] {
              double acc = 0.0;
              for (std::int64_t i = 0; i < epoch_samples; ++i) {
                acc += sample_checksum(dataset.sample(i));
              }
              return acc;
            }));
      }
    }
    orbit2::kernels::set_max_threads(0);
  }

  // --- Obs-traced 2-step TilesTrainer run (fixed region): per-phase span
  // totals expose how much of the step the data pipeline consumes. The
  // scenario is the paper's regional fine-tuning task (one fixed terrain,
  // precipitation downscaled from its coarse analogue), where terrain
  // synthesis is two of the three GRFs each sample pays — the case the
  // terrain memo is for. ---
  {
    const bool obs_was_enabled = orbit2::obs::enabled();
    if (!obs_was_enabled) orbit2::obs::set_enabled(true);

    orbit2::data::DatasetConfig dconfig =
        dataset_config(quick ? 32 : 64, quick ? 64 : 128, /*fixed_region=*/true);
    dconfig.input_variables = {dconfig.input_variables[orbit2::data::variable_index(
        dconfig.input_variables, "total_precipitation")]};
    dconfig.output_variables = {dconfig.output_variables[orbit2::data::variable_index(
        dconfig.output_variables, "prcp")]};
    const orbit2::data::SyntheticDataset dataset(dconfig);

    orbit2::model::ModelConfig mconfig = orbit2::model::preset_tiny();
    mconfig.in_channels = 1;
    mconfig.out_channels = 1;
    mconfig.upscale = 4;

    orbit2::train::TrainerConfig tconfig;
    tconfig.epochs = 1;
    tconfig.batch_size = 2;
    tconfig.shuffle = false;
    orbit2::TileSpec tiles;
    tiles.rows = 2;
    tiles.cols = 2;
    tiles.halo = 2;

    orbit2::kernels::set_max_threads(threads);
    char tag[64];
    std::snprintf(tag, sizeof(tag), "%lldx%lld:fixed:2step",
                  static_cast<long long>(dconfig.hr_h),
                  static_cast<long long>(dconfig.hr_w));

    // Two identical fits against the same dataset: the first starts with
    // every per-dataset cache cold (terrain memo, filter/plan caches), the
    // second sees them warm. Real fine-tuning runs thousands of steps, so
    // "steady" is the representative number; "cold" bounds the one-time
    // warm-up cost. Phase records are per-fit deltas of the span totals.
    const char* kPhases[] = {"train/data", "train/forward", "train/backward",
                             "train/optimizer"};
    double prior[4] = {0.0, 0.0, 0.0, 0.0};
    for (const char* variant : {"cold", "steady"}) {
      orbit2::train::TilesTrainer trainer(
          [mconfig] {
            Rng rng(4);
            return std::make_unique<orbit2::model::ReslimModel>(mconfig, rng);
          },
          tiles, tconfig);
      const double t0 = now_seconds();
      // 4 samples / batch 2 -> exactly 2 optimizer steps.
      trainer.fit(dataset, {0, 1, 2, 3});
      const double elapsed = now_seconds() - t0;

      Record total;
      total.bench = "tiles_train";
      total.config = tag;
      total.variant = std::string("wall_total:") + variant;
      total.threads = threads;
      total.seconds = elapsed;
      records.push_back(total);
      for (std::size_t p = 0; p < 4; ++p) {
        const double cumulative = span_total_seconds(kPhases[p]);
        Record rec;
        rec.bench = "tiles_train_phase";
        rec.config = tag;
        rec.variant = std::string(kPhases[p]) + ":" + variant;
        rec.threads = threads;
        rec.seconds = cumulative - prior[p];
        prior[p] = cumulative;
        records.push_back(rec);
      }
    }
    orbit2::kernels::set_max_threads(0);
    if (!obs_was_enabled) orbit2::obs::set_enabled(false);
  }

  emit_json(records);
  if (!trace_path.empty()) {
    orbit2::obs::set_enabled(false);
    orbit2::obs::write_chrome_trace(trace_path);
    std::fprintf(stderr, "trace written to %s\n", trace_path.c_str());
  }
  return 0;
}
