// Fig 6(a): TILES sequence-scaling speedup across GPUs, relative to an
// 8-GPU non-tiled baseline (9.5M model, 112->28 km task, 16 tiles).
//
// Paper reference: 1.9x at 8 GPUs, scaling near-linearly to 515x at 2048
// GPUs.
//
// Evidence layers:
//  1. hwsim sweep at the paper's scales.
//  2. Real CPU measurement: tiled vs monolithic inference on the bench
//     grid, demonstrating the attention-window reduction on real kernels.

#include "bench/common.hpp"
#include "core/kernels.hpp"
#include "core/timer.hpp"
#include "hwsim/perf_model.hpp"
#include "hwsim/sequence_parallel.hpp"
#include "tiles/tiles.hpp"

namespace orbit2 {
namespace {

void hwsim_curve() {
  using namespace hwsim;
  FrontierTopology topo;
  bench::print_header(
      "Fig 6(a) — TILES speedup vs GPUs (hwsim, 9.5M, 16 tiles, vs 8-GPU "
      "non-tiled baseline)");
  WorkloadSpec spec;
  spec.config = model::preset_9_5m();
  spec.lr_h = 180;
  spec.lr_w = 360;
  spec.tiles = 16;
  const std::vector<std::int64_t> gpus = {8, 16, 32, 64, 128, 256, 512, 1024, 2048};
  const auto sweep = tiles_speedup_sweep(spec, gpus, topo);
  std::printf("%8s %12s   %s\n", "GPUs", "Speedup", "[paper: 1.9x @8 ... 515x @2048]");
  bench::print_rule();
  for (const auto& point : sweep) {
    std::printf("%8lld %11.1fx\n", static_cast<long long>(point.gpus),
                point.speedup);
  }
  std::printf(
      "\nShape check: near-linear growth with GPU count, with a small "
      "super-unit\nconstant from the attention-window reduction.\n");
}

void real_tiled_inference() {
  bench::print_header(
      "Fig 6(a) — real CPU kernels: tiled vs monolithic inference");
  const data::DatasetConfig dconfig = bench::us_dataset_config(303, 64, 128);
  data::SyntheticDataset dataset(dconfig);
  const auto in_ch = static_cast<std::int64_t>(dconfig.input_variables.size());
  const auto out_ch = static_cast<std::int64_t>(dconfig.output_variables.size());

  // Use the naive-attention path so the quadratic window cost is visible on
  // CPU timings (flash hides it behind better constants).
  model::ModelConfig conf = bench::bench_model_config(0, in_ch, out_ch);
  conf.use_flash_attention = false;
  Rng rng(4);
  model::ReslimModel model(conf, rng);
  const data::Sample sample = dataset.sample(0);

  WallTimer mono_timer;
  for (int i = 0; i < 3; ++i) model.predict_field(sample.input);
  const double mono = mono_timer.seconds() / 3.0;

  kernels::set_max_threads(4);
  const TileSpec spec{2, 2, 2};
  WallTimer tiled_timer;
  for (int i = 0; i < 3; ++i) {
    tiled_apply(sample.input, spec, 4,
                [&model](std::size_t, const Tensor& tile) {
                  return model.predict_field(tile);
                });
  }
  kernels::set_max_threads(0);
  const double tiled = tiled_timer.seconds() / 3.0;

  std::printf("%-22s %12.4f s\n", "monolithic inference", mono);
  std::printf("%-22s %12.4f s  (%.2fx)\n", "4-tile TILES inference", tiled,
              mono / tiled);
  std::printf(
      "\nShape check: tiling reduces the attention window per tile; on "
      "multi-core\nhosts the tiles also run concurrently (virtual GPUs).\n");
}

void comm_comparison() {
  using namespace hwsim;
  bench::print_header(
      "Fig 6(a) context — TILES vs ring sequence parallelism, communication "
      "per sample");
  // The paper's §II motivation: sequence parallelism (the 188K-token prior
  // art) all-to-alls KV blocks every layer; TILES exchanges one halo strip.
  // Geometry: 112->28 km task token grid (90x180), 16 devices, 6 layers.
  const std::int64_t grid_h = 90, grid_w = 180, devices = 16, layers = 6;
  const std::int64_t tokens = grid_h * grid_w - (grid_h * grid_w) % devices;
  std::printf("%-34s %16s\n", "Strategy", "bytes/sample");
  bench::print_rule();
  for (std::int64_t d : {256, 1024}) {
    std::printf("%-24s (d=%4lld) %16lld\n", "ring sequence parallel",
                static_cast<long long>(d),
                static_cast<long long>(
                    layers * ring_attention_comm_bytes(tokens, d, devices)));
  }
  std::printf("%-34s %16lld\n", "TILES halo exchange (halo 2)",
              static_cast<long long>(
                  tiles_halo_comm_bytes(grid_h, grid_w, devices, 2, 23)));
  std::printf(
      "\nShape check: TILES moves orders of magnitude fewer bytes — the "
      "paper's claim\nthat it 'requires least communication overhead' among "
      "the four parallelisms.\n");
}

}  // namespace
}  // namespace orbit2

int main() {
  orbit2::hwsim_curve();
  orbit2::comm_comparison();
  orbit2::real_tiled_inference();
  return 0;
}
