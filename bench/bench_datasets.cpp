// Table I: the dataset inventory. Reconstructs each paper dataset's
// synthetic analogue at a reduced grid, verifies shapes and variable
// counts, and prints the inventory table in the paper's format alongside
// the paper's values.
//
// Paper rows (resolution pairs -> sample dims, counts):
//   ERA5->ERA5 global 622->156, 23 -> 3, [32,64,23] -> [128,256,3], 367,920
//   ERA5->ERA5 global 112->28,  23 -> 3, [180,360,23] -> [720,1440,3], 367,920
//   PRISM->PRISM US   16->4,     7 -> 3, [180,360,7] -> [720,1440,3],  14,235
//   DAYMET->DAYMET US 16->4,     7 -> 3, [180,360,7] -> [720,1440,3],  14,946
//   [ERA5,DAYMET]->DAYMET US 28->7, 23->3, [120,240,23]->[480,960,3],  14,946
//   ERA5->IMERG global 28->7,   23 -> 3, [720,1440,23]->[2880,5760,3],  1,488

#include "bench/common.hpp"

namespace orbit2 {
namespace {

struct InventoryRow {
  const char* name;
  const char* region;
  const char* resolution;
  std::int64_t in_vars;
  std::int64_t out_vars;
  std::int64_t lr_h, lr_w;      // bench-scale sample dims (reduced 4x)
  std::int64_t paper_samples;   // paper's pair count
  bool fixed_region;
  bool observation;
};

}  // namespace
}  // namespace orbit2

int main() {
  using namespace orbit2;
  bench::print_header("Table I — dataset inventory (synthetic analogues)");

  const InventoryRow rows[] = {
      {"ERA5->ERA5 (622->156km)", "Global", "622->156", 23, 3, 8, 16, 367920,
       false, false},
      {"ERA5->ERA5 (112->28km)", "Global", "112->28", 23, 3, 45, 90, 367920,
       false, false},
      {"PRISM->PRISM", "US", "16->4", 7, 3, 45, 90, 14235, true, false},
      {"DAYMET->DAYMET", "US", "16->4", 7, 3, 45, 90, 14946, true, false},
      {"[ERA5,DAYMET]->DAYMET", "US", "28->7", 23, 3, 30, 60, 14946, true,
       false},
      {"ERA5->IMERG", "Global", "28->7", 23, 3, 180, 360, 1488, false, true},
  };

  std::printf("%-26s %-7s %-9s %5s %5s %-22s %10s\n", "Dataset", "Region",
              "Res(km)", "Vin", "Vout", "Sample dims (bench)", "PaperN");
  bench::print_rule();
  for (const auto& row : rows) {
    data::DatasetConfig config;
    config.hr_h = row.lr_h * 4;
    config.hr_w = row.lr_w * 4;
    config.upscale = 4;
    config.fixed_region = row.fixed_region;
    config.observation_targets = row.observation;
    config.seed = 808;
    auto inputs = data::era5_input_variables();
    if (row.in_vars < static_cast<std::int64_t>(inputs.size())) {
      inputs.resize(static_cast<std::size_t>(row.in_vars));
    }
    config.input_variables = inputs;
    data::SyntheticDataset dataset(config);
    const data::Sample sample = dataset.sample(0);

    // Verify the generator matches the declared geometry.
    ORBIT2_CHECK(sample.input.shape() ==
                 Shape({row.in_vars, row.lr_h, row.lr_w}));
    ORBIT2_CHECK(sample.target.shape() ==
                 Shape({3, row.lr_h * 4, row.lr_w * 4}));

    char dims[48];
    std::snprintf(dims, sizeof(dims), "[%lld,%lld,%lld]->[%lld,%lld,3]",
                  static_cast<long long>(row.lr_h),
                  static_cast<long long>(row.lr_w),
                  static_cast<long long>(row.in_vars),
                  static_cast<long long>(row.lr_h * 4),
                  static_cast<long long>(row.lr_w * 4));
    std::printf("%-26s %-7s %-9s %5lld %5lld %-22s %10lld\n", row.name,
                row.region, row.resolution,
                static_cast<long long>(row.in_vars), 3LL, dims,
                static_cast<long long>(row.paper_samples));
  }
  std::printf(
      "\nAll six dataset analogues generate with the declared geometry; the "
      "4x\nrefinement pairing and variable structure (5 static / 12 "
      "atmospheric / 6\nsurface inputs, 3 outputs) match Table I. Sample "
      "dims are reduced 4x per\naxis for bench budgets; counts are "
      "unbounded (samples are procedural).\n");
  return 0;
}
