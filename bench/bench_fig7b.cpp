// Fig 7(b): visual comparison of daily total precipitation — ground truth
// vs the larger model's downscaled prediction (paper: 7 km DAYMET vs 126M
// ORBIT-2 output for 2020-01-01).
//
// The bench trains the larger capacity model, then writes netpbm images:
//   fig7b_input.pgm       coarse-resolution precipitation input
//   fig7b_truth.pgm       HR ground truth
//   fig7b_prediction.pgm  HR model prediction
//   fig7b_*.ppm           diverging-colormap versions
// plus the prediction/truth agreement metrics for the shown sample.

#include "bench/common.hpp"
#include "image/io.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace orbit2;
  bench::print_header("Fig 7(b) — precipitation field visual comparison");

  const data::DatasetConfig dconfig = bench::us_dataset_config(606, 64, 128);
  data::SyntheticDataset dataset(dconfig);
  const auto in_ch = static_cast<std::int64_t>(dconfig.input_variables.size());
  const auto out_ch = static_cast<std::int64_t>(dconfig.output_variables.size());
  const std::int64_t train_n = 16, eval_index = train_n;

  auto model = bench::train_reslim(bench::bench_model_config(1, in_ch, out_ch),
                                   dataset, train_n, 30, 42);

  const data::Sample physical = dataset.sample_physical(eval_index);
  Tensor prediction = train::predict_physical(*model, dataset, eval_index);

  // Precipitation is the second output variable (prcp); log-transform for
  // display as the paper does for its precip metrics.
  const std::int64_t h = prediction.dim(1), w = prediction.dim(2);
  const Tensor truth =
      metrics::log1p_transform(physical.target.slice(0, 1, 1).reshape(Shape{h, w}));
  const Tensor pred =
      metrics::log1p_transform(prediction.slice(0, 1, 1).reshape(Shape{h, w}));
  const std::size_t precip_in = data::variable_index(
      dconfig.input_variables, "total_precipitation");
  const Tensor input_field = metrics::log1p_transform(
      physical.input.slice(0, static_cast<std::int64_t>(precip_in), 1)
          .reshape(Shape{physical.input.dim(1), physical.input.dim(2)}));

  const float lo = 0.0f;
  const float hi = std::max(truth.max(), pred.max());
  write_pgm("fig7b_input.pgm", input_field, lo, hi);
  write_pgm("fig7b_truth.pgm", truth, lo, hi);
  write_pgm("fig7b_prediction.pgm", pred, lo, hi);
  write_ppm_diverging("fig7b_truth.ppm", truth, lo, hi);
  write_ppm_diverging("fig7b_prediction.ppm", pred, lo, hi);

  std::printf("Wrote fig7b_{input,truth,prediction}.pgm and .ppm\n\n");
  std::printf("Agreement on the displayed sample (log(x+1) space):\n");
  std::printf("  R2   = %.4f\n", metrics::r2_score(pred, truth));
  std::printf("  RMSE = %.4f\n", metrics::rmse(pred, truth));
  std::printf("  SSIM = %.4f\n", metrics::ssim(pred, truth));
  std::printf("  PSNR = %.2f dB\n", metrics::psnr(pred, truth));
  std::printf(
      "\nShape check: the prediction reconstructs fine-scale precipitation "
      "structure\nabsent from the coarse input (compare the three images).\n");
  return 0;
}
