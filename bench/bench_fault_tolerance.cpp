// Fault tolerance: expected goodput versus checkpoint interval for an
// ORBIT-2-scale pretraining job (10B parameters on 32,768 Frontier GCDs).
//
// At this scale the job-level MTBF is under an hour, so the checkpoint
// interval is a first-order term in time-to-solution: checkpoint too often
// and the PFS write cost dominates, too rarely and every failure replays a
// large amount of lost work. The bench sweeps the interval across four
// orders of magnitude, prints the analytic goodput curve next to a seeded
// Monte-Carlo run simulation, and marks the Young/Daly closed-form optimum
// tau* = sqrt(2 C / lambda).

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "hwsim/fault.hpp"

int main() {
  using namespace orbit2;
  using namespace orbit2::hwsim;
  bench::print_header(
      "Fault tolerance — goodput vs checkpoint interval (10B / 32768 GCDs)");

  const std::int64_t parameters = 10'000'000'000;
  const std::int64_t gcds = 32768;

  FaultModelConfig fconfig;
  fconfig.gcd_mtbf_seconds = 1.0e8;  // job MTBF ~ 51 minutes
  FaultModel faults(gcds, fconfig);
  RecoveryCostConfig recovery;

  const double write_cost = checkpoint_write_seconds(parameters, recovery);
  const double recover = recovery_seconds(parameters, recovery);
  const double lambda = faults.failure_rate();
  const double tau_star = young_daly_interval(write_cost, lambda);

  std::printf("checkpoint state      : %.1f GB (fp32 params + AdamW m/v)\n",
              checkpoint_bytes(parameters) / 1e9);
  std::printf("checkpoint write cost : %.2f s  (at %.0f GB/s aggregate)\n",
              write_cost, recovery.write_bandwidth / 1e9);
  std::printf("failure rate          : %.3e /s  (job MTBF %.0f s)\n", lambda,
              faults.mean_time_between_failures());
  std::printf("recovery cost         : %.1f s  (detect + restart + reload)\n",
              recover);
  std::printf("Young/Daly optimum    : tau* = sqrt(2C/lambda) = %.1f s\n",
              tau_star);
  std::printf("straggler slowdown    : %.2fx (%lld slow GCDs; the simulated "
              "column pays it,\n                        the analytic column "
              "models failures + checkpoints only)\n\n",
              faults.step_slowdown(),
              static_cast<long long>(faults.straggler_count()));

  std::vector<double> intervals;
  for (double tau = tau_star / 32.0; tau <= tau_star * 64.0; tau *= 2.0) {
    intervals.push_back(tau);
  }
  const auto analytic = goodput_sweep(faults, recovery, parameters, intervals);

  // One simulated week of useful training per interval, common seed.
  const double target = 7.0 * 86400.0;
  std::printf("%14s %12s %12s %9s %8s\n", "interval(s)", "analytic",
              "simulated", "failures", "ckpts");
  bench::print_rule();
  std::size_t best = 0;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    faults.reseed(fconfig.seed);
    const SimulatedRun run =
        simulate_run(faults, recovery, parameters, intervals[i], target);
    const char* mark =
        intervals[i] / tau_star < 2.0 && tau_star / intervals[i] < 2.0
            ? "  <- near tau*"
            : "";
    std::printf("%14.1f %12.4f %12.4f %9lld %8lld%s\n", intervals[i],
                analytic[i].goodput, run.goodput(),
                static_cast<long long>(run.failures),
                static_cast<long long>(run.checkpoints_written), mark);
    if (analytic[i].goodput > analytic[best].goodput) best = i;
  }
  std::printf(
      "\nAnalytic optimum in sweep: %.1f s (goodput %.4f); the curve falls "
      "off on\nboth sides — the Young/Daly shape. Checkpointing every "
      "optimizer step would\nspend the machine on I/O; checkpointing hourly "
      "would spend it on replay.\n",
      analytic[best].interval_seconds, analytic[best].goodput);
  return 0;
}
