// Fault tolerance and elastic recovery: goodput curves as machine-readable
// JSON, so EXPERIMENTS.md and CI can diff runs mechanically (same contract
// as bench_kernels / bench_data).
//
// Two sweeps:
//  1. goodput_vs_interval — classic Young/Daly territory for an ORBIT-2
//     scale job (10B parameters, 32768 Frontier GCDs): analytic goodput vs
//     a seeded discrete-event simulation across four orders of magnitude of
//     checkpoint interval, with tau* marked.
//  2. elastic_replan_vs_wait — the recovery-policy tradeoff: after losing
//     workers, re-plan-and-continue on the survivors (pay two reshard
//     passes, run degraded until repair) or wait for repair (pay the whole
//     repair window). Analytic curves from elastic::expected_goodput_* next
//     to simulate_elastic_run driven by the same seeded failure stream; the
//     crossover repair time is where the policy flips.
//
// Usage: bench_fault_tolerance [--reps N] [--quick] [--trace PATH]
//   --reps N     seeds averaged per simulated point (default 3)
//   --quick      half the sweep points and shorter simulated runs (CI smoke)
//   --trace PATH enable obs tracing and write Chrome trace JSON to PATH
//               (records the elastic/replan policy spans)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/obs.hpp"
#include "elastic/replan.hpp"
#include "hwsim/fault.hpp"
#include "model/config.hpp"

namespace {

using namespace orbit2;
using namespace orbit2::hwsim;

struct Record {
  std::string bench;    // "goodput_vs_interval" or "elastic_replan_vs_wait"
  std::string x_name;   // swept variable: "interval_s" or "repair_s"
  double x = 0.0;
  std::string variant;  // "analytic" / "simulated" x "replan" / "wait"
  double goodput = 0.0;
  double failures = 0.0;   // mean across seeds for simulated points
  double checkpoints = 0.0;
  double replans = 0.0;
  double degraded_s = 0.0;
};

void emit_json(const std::vector<Record>& records) {
  std::printf("[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::printf(
        "  {\"bench\": \"%s\", \"%s\": %.1f, \"variant\": \"%s\", "
        "\"goodput\": %.6f, \"failures\": %.1f, \"checkpoints\": %.1f, "
        "\"replans\": %.1f, \"degraded_s\": %.1f}%s\n",
        r.bench.c_str(), r.x_name.c_str(), r.x, r.variant.c_str(), r.goodput,
        r.failures, r.checkpoints, r.replans, r.degraded_s,
        i + 1 < records.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3;
  bool quick = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--reps N] [--quick] [--trace PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!trace_path.empty()) obs::set_enabled(true);

  std::vector<Record> records;

  // --- Sweep 1: goodput vs checkpoint interval (10B / 32768 GCDs). -------
  {
    const std::int64_t parameters = 10'000'000'000;
    const std::int64_t gcds = 32768;
    FaultModelConfig fconfig;
    fconfig.gcd_mtbf_seconds = 1.0e8;  // job MTBF ~ 51 minutes
    FaultModel faults(gcds, fconfig);
    const RecoveryCostConfig recovery;
    const double write_cost = checkpoint_write_seconds(parameters, recovery);
    const double tau_star =
        young_daly_interval(write_cost, faults.failure_rate());
    std::fprintf(stderr,
                 "goodput_vs_interval: C=%.1fs lambda=%.3e tau*=%.1fs\n",
                 write_cost, faults.failure_rate(), tau_star);

    std::vector<double> intervals;
    const double step = quick ? 4.0 : 2.0;
    for (double tau = tau_star / 32.0; tau <= tau_star * 64.0; tau *= step) {
      intervals.push_back(tau);
    }
    const auto analytic =
        goodput_sweep(faults, recovery, parameters, intervals);
    const double target = (quick ? 1.0 : 7.0) * 86400.0;
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      Record a;
      a.bench = "goodput_vs_interval";
      a.x_name = "interval_s";
      a.x = intervals[i];
      a.variant = "analytic";
      a.goodput = analytic[i].goodput;
      records.push_back(a);

      Record s = a;
      s.variant = "simulated";
      s.goodput = 0.0;
      for (int r = 0; r < reps; ++r) {
        faults.reseed(fconfig.seed + static_cast<std::uint64_t>(r));
        const SimulatedRun run =
            simulate_run(faults, recovery, parameters, intervals[i], target);
        s.goodput += run.goodput();
        s.failures += static_cast<double>(run.failures);
        s.checkpoints += static_cast<double>(run.checkpoints_written);
      }
      s.goodput /= reps;
      s.failures /= reps;
      s.checkpoints /= reps;
      records.push_back(s);
    }
  }

  // --- Sweep 2: elastic re-plan vs wait-for-repair across repair times. --
  {
    const std::int64_t parameters = 10'000'000'000;
    const std::int64_t total = 64, survivors = 56;
    const double job_mtbf = 20000.0;
    const double tau = 300.0;
    FaultModelConfig fconfig;
    fconfig.gcd_mtbf_seconds = job_mtbf * static_cast<double>(total);
    fconfig.straggler_fraction = 0.0;  // isolate the recovery tradeoff
    fconfig.link_degrade_fraction = 0.0;
    FaultModel faults(total, fconfig);
    const RecoveryCostConfig recovery;
    const double ckpt = checkpoint_write_seconds(parameters, recovery);
    const double rate = faults.failure_rate();
    const double target = (quick ? 0.5 : 2.0) * 1.0e6;

    std::vector<double> repairs = {100.0, 500.0, 2000.0, 8000.0, 32000.0};
    if (quick) repairs = {100.0, 2000.0, 32000.0};

    // The policy itself decides each point too (emits elastic/replan spans
    // into the trace and exercises plan_parallelism feasibility).
    WorkloadSpec spec;
    spec.config = model::preset_126m();
    spec.lr_h = 180;
    spec.lr_w = 360;
    spec.tiles = 4;

    for (const double repair : repairs) {
      elastic::ElasticCostConfig elastic_cost;
      elastic_cost.repair_seconds = repair;

      elastic::RecoveryPolicyConfig pconfig;
      pconfig.elastic = elastic_cost;
      const elastic::RecoveryPolicy policy(pconfig);
      const auto decision = policy.decide(spec, FrontierTopology{}, faults,
                                          survivors, tau);
      std::fprintf(stderr, "repair=%.0fs -> policy says %s\n", repair,
                   decision.action == elastic::RecoveryAction::kReplanContinue
                       ? "replan"
                       : "wait");

      for (const bool replan : {true, false}) {
        Record a;
        a.bench = "elastic_replan_vs_wait";
        a.x_name = "repair_s";
        a.x = repair;
        a.variant = replan ? "analytic_replan" : "analytic_wait";
        a.goodput = replan
                        ? elastic::expected_goodput_replan(
                              tau, ckpt, rate, parameters, survivors, total,
                              recovery, elastic_cost)
                        : elastic::expected_goodput_wait(
                              tau, ckpt, rate, parameters, recovery,
                              elastic_cost);
        records.push_back(a);

        Record s = a;
        s.variant = replan ? "simulated_replan" : "simulated_wait";
        s.goodput = 0.0;
        const auto action = replan
                                ? elastic::RecoveryAction::kReplanContinue
                                : elastic::RecoveryAction::kWaitForRepair;
        for (int r = 0; r < reps; ++r) {
          faults.reseed(fconfig.seed + static_cast<std::uint64_t>(r));
          const auto run = elastic::simulate_elastic_run(
              faults, recovery, elastic_cost, parameters, survivors, total,
              tau, target, action);
          s.goodput += run.goodput();
          s.failures += static_cast<double>(run.failures);
          s.checkpoints += static_cast<double>(run.checkpoints_written);
          s.replans += static_cast<double>(run.replans);
          s.degraded_s += run.degraded_seconds;
        }
        s.goodput /= reps;
        s.failures /= reps;
        s.checkpoints /= reps;
        s.replans /= reps;
        s.degraded_s /= reps;
        records.push_back(s);
      }
    }
  }

  emit_json(records);
  if (!trace_path.empty()) {
    obs::set_enabled(false);
    obs::write_chrome_trace(trace_path);
    std::fprintf(stderr, "trace written to %s\n", trace_path.c_str());
  }
  return 0;
}
